#include "resilience/supervisor.hpp"

#include <sstream>

namespace antmd::resilience {

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNumerical:
      return "numerical";
    case FailureKind::kIo:
      return "io";
    case FailureKind::kNodeFailure:
      return "node-failure";
    case FailureKind::kWatchdog:
      return "watchdog";
    case FailureKind::kSilentCorruption:
      return "silent-corruption";
    case FailureKind::kNone:
      return "none";
  }
  return "unknown";
}

const char* recovery_action_name(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kRetry:
      return "retry";
    case RecoveryAction::kRollback:
      return "rollback";
    case RecoveryAction::kRestart:
      return "restart";
    case RecoveryAction::kDegrade:
      return "degrade";
    case RecoveryAction::kEscalate:
      return "escalate";
  }
  return "unknown";
}

std::string RecoveryReport::render() const {
  std::ostringstream os;
  os << "recovery report: "
     << (completed ? "run completed" : "run abandoned") << "\n"
     << "  steps delivered:    " << steps_delivered << "\n"
     << "  faults detected:    " << faults_detected << "\n"
     << "  retries:            " << retries << "\n"
     << "  rollbacks:          " << rollbacks << "\n"
     << "  restarts:           " << restarts << "\n"
     << "  node remaps:        " << node_remaps << "\n"
     << "  watchdog trips:     " << watchdog_trips << "\n"
     << "  corruptions:        " << corruptions << "\n"
     << "  snapshots:          " << snapshots << "\n"
     << "  recovery modeled s: " << recovery_modeled_s << "\n";
  if (!final_error.empty()) {
    os << "  final error:        " << final_error << "\n";
  }
  if (!events.empty()) {
    os << "  events:\n";
    for (const RecoveryEvent& e : events) {
      os << "    step " << e.step << " [" << failure_kind_name(e.kind) << " -> "
         << recovery_action_name(e.action) << "]";
      if (e.backoff_s > 0) os << " backoff=" << e.backoff_s << "s";
      os << " " << e.detail << "\n";
    }
  }
  return std::move(os).str();
}

void write_recovery_report(const std::string& path,
                           const RecoveryReport& report) {
  io::write_file_atomic(path, report.render());
}

namespace detail {

SupervisorMetrics& supervisor_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static SupervisorMetrics m{
      reg.counter("resilience.supervisor.fault.count"),
      reg.counter("resilience.supervisor.retry.count"),
      reg.counter("resilience.supervisor.rollback.count"),
      reg.counter("resilience.supervisor.restart.count"),
      reg.counter("resilience.supervisor.remap.count"),
      reg.counter("resilience.supervisor.watchdog.count"),
      reg.counter("resilience.supervisor.escalation.count"),
      reg.counter("resilience.supervisor.mirror_degrade.count"),
      reg.gauge("resilience.supervisor.recovery_modeled_seconds"),
      reg.gauge("resilience.supervisor.snapshot_bytes")};
  return m;
}

}  // namespace detail

void SnapshotRing::push(uint64_t step, std::string blob) {
  if (!entries_.empty() && entries_.back().first == step) {
    bytes_ -= entries_.back().second.size();
    bytes_ += blob.size();
    entries_.back().second = std::move(blob);  // refresh in place
  } else {
    bytes_ += blob.size();
    entries_.emplace_back(step, std::move(blob));
  }
  // Depth cap, then byte budget; the newest entry always survives so a
  // rollback target exists even when one snapshot exceeds the budget.
  while (entries_.size() > depth_ ||
         (max_bytes_ > 0 && bytes_ > max_bytes_ && entries_.size() > 1)) {
    bytes_ -= entries_.front().second.size();
    entries_.pop_front();
  }
}

uint64_t SnapshotRing::newest_step() const {
  if (entries_.empty()) {
    throw Error("snapshot ring is empty");
  }
  return entries_.back().first;
}

const std::string& SnapshotRing::newest_blob() const {
  if (entries_.empty()) {
    throw Error("snapshot ring is empty");
  }
  return entries_.back().second;
}

}  // namespace antmd::resilience
