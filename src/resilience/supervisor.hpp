// Supervisor: the automatic recovery layer that makes a faulted run finish
// on its own.
//
// PR 2 taught the repo to *inject* faults and PR 3 to *observe* them; this
// closes the loop.  The supervisor wraps a simulation driver
// (md::Simulation or runtime::MachineSimulation) and owns the failure
// lifecycle:
//
//   detect    — HealthGuard-style numerical checks after each step, typed
//               IoError / NumericalError escapes from step(), modeled node
//               failures (alive-count drops), and a phase watchdog on the
//               modeled step time (a hung node stalls the bulk-synchronous
//               step far past any sane deadline)
//   classify  — transient (first few occurrences: retry is cheap and the
//               deterministic fault schedule usually moves on) vs fatal
//               (the retry budget is spent and the failure persists)
//   recover   — rollback to the newest entry of an in-memory snapshot
//               ring; when the ring cannot restore, restart from the last
//               good on-disk checkpoint (with `.bak` fallback)
//   degrade   — remap hung/failed nodes onto survivors (bit-exact), or
//               drop the on-disk mirror when the disk itself is failing
//   escalate  — give up with a typed RecoveryReport describing every
//               recovery decision taken, for the operator and exit-code 5
//
// Determinism contract (extends PR 1): when recovery succeeds the final
// trajectory is bit-identical to the fault-free run.  Rollbacks restore a
// bit-exact snapshot and recovery never touches the timestep or any physics
// parameter; retransmits, backoff waits and re-run steps are charged to
// modeled time and the resilience.supervisor.* metrics only.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "io/checkpoint.hpp"
#include "machine/transport.hpp"  // StepDelivery::kNoNode (header-only use)
#include "md/engine_api.hpp"
#include "obs/metrics.hpp"
#include "resilience/audit.hpp"
#include "resilience/health.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace antmd::resilience {

enum class FailureKind {
  kNumerical,    ///< health violation or NumericalError from step()
  kIo,           ///< IoError from step() or the checkpoint mirror
  kNodeFailure,  ///< a modeled torus node dropped out (remap is automatic)
  kWatchdog,     ///< modeled step time blew the phase deadline
  kSilentCorruption,  ///< audit digest/scrub/shadow-replay mismatch (SDC)
  kNone,
};

enum class RecoveryAction {
  kRetry,     ///< re-run after a deterministic backoff
  kRollback,  ///< restore the newest in-memory snapshot
  kRestart,   ///< restore the on-disk checkpoint (.bak fallback)
  kDegrade,   ///< remap a node / disable the failing mirror
  kEscalate,  ///< recovery exhausted; run abandoned
};

[[nodiscard]] const char* failure_kind_name(FailureKind kind);
[[nodiscard]] const char* recovery_action_name(RecoveryAction action);

struct SupervisorConfig {
  /// Recovery attempts per failure episode before it is classified fatal.
  int max_retries = 3;
  /// Deterministic exponential backoff charged per retry (modeled seconds,
  /// never a wall-clock sleep — tests stay fast and reproducible).
  double backoff_initial_s = 1e-3;
  double backoff_factor = 2.0;
  /// Steps between in-memory snapshot-ring entries.
  int snapshot_interval = 50;
  /// Ring depth (newest entry is the rollback target).
  size_t snapshot_ring_depth = 4;
  /// Byte budget for the ring (0 = unbounded).  Large systems evict old
  /// entries past this bound even below the depth cap, so a run's resident
  /// snapshot cost is predictable — the fleet scheduler's admission and
  /// eviction decisions read it via snapshot_bytes() and the
  /// resilience.supervisor.snapshot_bytes gauge.
  size_t snapshot_ring_bytes = 0;
  /// Optional on-disk mirror of each ring snapshot (v2 container, atomic
  /// write, `.bak` rotation); also the restart source when the ring fails.
  std::string checkpoint_path;
  /// Modeled per-step deadline in milliseconds; 0 disables the watchdog.
  double watchdog_ms = 0.0;
  /// Numerical thresholds reused from the HealthGuard layer.
  HealthConfig health;
  /// SDC audit settings (audit.interval = 0 leaves auditing off; > 0 makes
  /// run() construct an Auditor — call enable_audit() first to attach a
  /// static-data Scrubber).  With auditing on, the snapshot ring is fed
  /// only audit-verified blobs, so every rollback target is known-clean.
  AuditConfig audit;
  /// Where the RecoveryReport is written on escalation ("" = stderr only).
  std::string report_path;
};

/// One recovery decision, in the order taken.
struct RecoveryEvent {
  uint64_t step = 0;
  FailureKind kind = FailureKind::kNone;
  RecoveryAction action = RecoveryAction::kRetry;
  double backoff_s = 0.0;
  std::string detail;
};

/// Typed outcome of a supervised run.
struct RecoveryReport {
  bool completed = false;        ///< run reached its target step count
  uint64_t steps_delivered = 0;  ///< net steps (re-runs not double counted)
  uint64_t faults_detected = 0;
  uint64_t retries = 0;
  uint64_t rollbacks = 0;
  uint64_t restarts = 0;
  uint64_t node_remaps = 0;
  uint64_t watchdog_trips = 0;
  uint64_t corruptions = 0;  ///< silent-corruption episodes detected
  uint64_t snapshots = 0;
  /// Backoff waits and re-run charges attributed to recovery (modeled s).
  double recovery_modeled_s = 0.0;
  std::vector<RecoveryEvent> events;
  std::string final_error;  ///< empty when completed

  /// Human-readable multi-line rendering (also what gets written to disk).
  [[nodiscard]] std::string render() const;
};

/// Writes report.render() atomically; throws IoError on failure.
void write_recovery_report(const std::string& path,
                           const RecoveryReport& report);

namespace detail {

struct SupervisorMetrics {
  obs::Counter& faults;
  obs::Counter& retries;
  obs::Counter& rollbacks;
  obs::Counter& restarts;
  obs::Counter& remaps;
  obs::Counter& watchdog_trips;
  obs::Counter& escalations;
  obs::Counter& mirror_degrades;
  obs::Gauge& recovery_modeled_s;
  obs::Gauge& snapshot_bytes;
};

SupervisorMetrics& supervisor_metrics();

}  // namespace detail

/// Bounded ring of serialized last-good snapshots (newest-first rollback).
/// Bounded by entry count and, when max_bytes > 0, by total payload bytes;
/// the newest entry is never evicted, so rollback always has a target.
class SnapshotRing {
 public:
  explicit SnapshotRing(size_t depth, size_t max_bytes = 0)
      : depth_(depth ? depth : 1), max_bytes_(max_bytes) {}

  void push(uint64_t step, std::string blob);
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] size_t size() const { return entries_.size(); }
  /// Total serialized payload resident in the ring.
  [[nodiscard]] size_t bytes() const { return bytes_; }
  [[nodiscard]] uint64_t newest_step() const;
  [[nodiscard]] const std::string& newest_blob() const;

 private:
  size_t depth_;
  size_t max_bytes_;
  size_t bytes_ = 0;
  std::deque<std::pair<uint64_t, std::string>> entries_;
};

/// True for drivers that expose the modeled machine (node remap, step
/// breakdown, reliable transport) — the watchdog/remap paths only exist
/// there; md::Simulation is supervised for health and I/O alone.
template <typename Sim>
concept MachineDriver = requires(Sim& s) {
  s.mutable_engine();
  s.mutable_transport();
  s.last_breakdown();
  s.rebuild_distribution();
};

/// Any engine satisfying md::EngineApi is supervisable; the MachineDriver
/// refinement above just unlocks the watchdog/remap extras.
template <md::EngineApi Sim>
class Supervisor {
 public:
  Supervisor(Sim& sim, SupervisorConfig config)
      : sim_(&sim),
        config_(std::move(config)),
        ring_(config_.snapshot_ring_depth, config_.snapshot_ring_bytes) {
    if (config_.max_retries < 1) {
      throw ConfigError("supervisor max_retries must be >= 1");
    }
    if (config_.snapshot_interval < 1) {
      throw ConfigError("supervisor snapshot_interval must be >= 1");
    }
    if (!(config_.backoff_factor >= 1.0)) {
      throw ConfigError("supervisor backoff_factor must be >= 1");
    }
    if (config_.health.check_interval < 1) {
      throw ConfigError("health check_interval must be >= 1");
    }
  }

  /// Advances the simulation `steps` beyond its current step counter under
  /// supervision.  Returns the report; report.completed tells the caller
  /// whether the run delivered every step or escalation abandoned it.
  /// Activates SDC auditing per config().audit, optionally with a static-
  /// data scrubber (which must outlive the supervisor).  Idempotent-ish:
  /// calling again rebuilds the auditor (fresh schedule/baselines).  run()
  /// calls this automatically when config().audit.interval > 0 and no
  /// auditor exists yet, so CLI/fleet code only needs an explicit call to
  /// attach a scrubber.
  void enable_audit(Scrubber* scrubber = nullptr) {
    if (config_.audit.interval < 1) {
      throw ConfigError("enable_audit needs config.audit.interval >= 1");
    }
    auditor_.emplace(
        *sim_, config_.audit, scrubber,
        [this](uint64_t step, const std::string& blob) {
          ring_.push(step, blob);
          ref_energy_ = sim_->potential_energy() + sim_->kinetic_energy();
          ref_step_ = step;
          ++report_.snapshots;
          detail::supervisor_metrics().snapshot_bytes.set(
              static_cast<double>(ring_.bytes()));
          if (!config_.checkpoint_path.empty() && mirror_enabled_) {
            write_mirror(blob);
          }
        });
  }

  [[nodiscard]] const Auditor<Sim>* auditor() const {
    return auditor_ ? &*auditor_ : nullptr;
  }

  RecoveryReport run(size_t steps) {
    const uint64_t start = sim_->state().step;
    const uint64_t target = start + steps;
    if (!auditor_ && config_.audit.interval > 0) enable_audit();
    snapshot();
    if constexpr (MachineDriver<Sim>) {
      // First run() only: a node that died between two supervised runs is
      // still a drop the next run should observe and report.
      if (last_alive_ == 0) last_alive_ = sim_->engine().alive_node_count();
    }
    while (sim_->state().step < target && !escalated_) {
      FailureKind kind = FailureKind::kNone;
      std::string detail;
      try {
        sim_->step();
      } catch (const NumericalError& e) {
        kind = FailureKind::kNumerical;
        detail = e.what();
      } catch (const IoError& e) {
        kind = FailureKind::kIo;
        detail = e.what();
      }
      if (kind == FailureKind::kNone) {
        observe_degradations();
        detect(kind, detail);
      }
      if (kind == FailureKind::kNone && auditor_) {
        AuditVerdict verdict = auditor_->after_step();
        if (verdict.corrupted) {
          kind = FailureKind::kSilentCorruption;
          detail = std::move(verdict.detail);
        }
      }
      if (kind == FailureKind::kNone) {
        attempts_ = 0;
        // With auditing on the ring is fed verified blobs by the auditor's
        // on_verified callback instead — a cadence snapshot here could
        // capture corruption that has not been detected yet, making the
        // rollback target part of the problem.
        if (!auditor_ &&
            sim_->state().step - ring_.newest_step() >=
                static_cast<uint64_t>(config_.snapshot_interval)) {
          snapshot();
        }
        continue;
      }
      handle_failure(kind, detail);
    }
    report_.steps_delivered = sim_->state().step - start;
    report_.completed = !escalated_ && sim_->state().step >= target;
    detail::supervisor_metrics().recovery_modeled_s.set(
        report_.recovery_modeled_s);
    if (escalated_ && !config_.report_path.empty()) {
      try {
        write_recovery_report(config_.report_path, report_);
      } catch (const IoError& e) {
        // The report is advisory; a failing disk must not mask the real
        // failure.  The caller still gets it via the return value.
        report_.final_error += " (report not written: ";
        report_.final_error += e.what();
        report_.final_error += ")";
      }
    }
    return report_;
  }

  [[nodiscard]] const RecoveryReport& report() const { return report_; }

  /// Resident bytes held by the in-memory snapshot ring — the per-run
  /// memory cost the fleet layer folds into its eviction decisions.
  [[nodiscard]] size_t snapshot_bytes() const { return ring_.bytes(); }

 private:
  /// Post-step detection that does not unwind the stack: numerical health
  /// and the modeled phase watchdog.
  void detect(FailureKind& kind, std::string& detail) {
    const uint64_t step = sim_->state().step;
    const bool snapshot_due =
        step - ring_.newest_step() >=
        static_cast<uint64_t>(config_.snapshot_interval);
    if (step % static_cast<uint64_t>(config_.health.check_interval) == 0 ||
        snapshot_due) {
      std::string violation =
          find_violation(*sim_, config_.health, ref_energy_, ref_step_);
      if (!violation.empty()) {
        kind = FailureKind::kNumerical;
        detail = std::move(violation);
        return;
      }
    }
    if constexpr (MachineDriver<Sim>) {
      if (config_.watchdog_ms > 0 &&
          sim_->last_breakdown().total * 1e3 > config_.watchdog_ms) {
        kind = FailureKind::kWatchdog;
        detail = "modeled step time " +
                 std::to_string(sim_->last_breakdown().total * 1e3) +
                 " ms exceeds watchdog deadline " +
                 std::to_string(config_.watchdog_ms) + " ms";
      }
    }
  }

  /// Node drop-outs need no recovery (the engine's remap is bit-exact);
  /// they are recorded as degrade events so the report tells the story.
  void observe_degradations() {
    if constexpr (MachineDriver<Sim>) {
      const size_t alive = sim_->engine().alive_node_count();
      if (alive < last_alive_) {
        ++report_.node_remaps;
        detail::supervisor_metrics().remaps.add();
        record(FailureKind::kNodeFailure, RecoveryAction::kDegrade, 0.0,
               std::to_string(last_alive_ - alive) +
                   " node(s) failed; work remapped onto " +
                   std::to_string(alive) + " survivors");
        last_alive_ = alive;
      }
    }
  }

  void handle_failure(FailureKind kind, const std::string& detail_text) {
    auto& metrics = detail::supervisor_metrics();
    ++report_.faults_detected;
    metrics.faults.add();

    if (kind == FailureKind::kWatchdog) {
      ++report_.watchdog_trips;
      metrics.watchdog_trips.add();
      if constexpr (MachineDriver<Sim>) {
        // A hung node is the canonical watchdog cause: remap it onto the
        // survivors (bit-exact) so the next step runs at full speed.  The
        // stall itself stays charged to modeled time.
        const size_t hung = sim_->transport().hung_node();
        if (hung != machine::StepDelivery::kNoNode) {
          sim_->mutable_transport().acknowledge_hang();
          sim_->mutable_engine().set_node_failed(hung);
          sim_->rebuild_distribution();
          last_alive_ = sim_->engine().alive_node_count();
          ++report_.node_remaps;
          metrics.remaps.add();
          record(kind, RecoveryAction::kDegrade, 0.0,
                 "node " + std::to_string(hung) +
                     " hung; remapped onto survivors: " + detail_text);
          attempts_ = 0;
          return;
        }
      }
      // No identified culprit: classify like a transient failure below.
    }

    if (kind == FailureKind::kSilentCorruption) {
      // Corruption episodes are budgeted separately from transient retries:
      // attempts_ resets on every clean step, so only a dedicated counter
      // can catch a node that keeps flipping bits across otherwise-healthy
      // intervals.  Exhausting it escalates (and in a fleet, quarantines).
      ++report_.corruptions;
      ++corruption_episodes_;
      if (corruption_episodes_ > config_.audit.max_recoveries) {
        escalate(kind,
                 detail_text + "; corruption budget (" +
                     std::to_string(config_.audit.max_recoveries) +
                     " episode(s)) exhausted — repeat corruption points at "
                     "failing hardware, not bad luck");
        return;
      }
    }

    // classify: transient while the episode's retry budget lasts.
    if (attempts_ >= config_.max_retries) {
      escalate(kind, detail_text);
      return;
    }
    const double backoff = backoff_cost(attempts_);
    ++attempts_;
    ++report_.retries;
    metrics.retries.add();
    report_.recovery_modeled_s += backoff;

    // recover: rollback to the snapshot ring; restart from disk when the
    // ring cannot restore.
    try {
      util::BinaryReader r(ring_.newest_blob());
      sim_->restore_checkpoint(r);
      ++report_.rollbacks;
      metrics.rollbacks.add();
      record(kind, RecoveryAction::kRollback, backoff,
             detail_text + " -> rolled back to step " +
                 std::to_string(ring_.newest_step()));
      if (auditor_) auditor_->on_recovery();
      return;
    } catch (const Error& ring_error) {
      if (config_.checkpoint_path.empty()) {
        escalate(kind, detail_text + "; snapshot ring unusable (" +
                           ring_error.what() + ") and no checkpoint");
        return;
      }
      try {
        std::string primary_error;
        std::string used = io::load_checkpoint_v2_or_backup(
            config_.checkpoint_path, {{"sim", sim_}}, &primary_error);
        ++report_.restarts;
        metrics.restarts.add();
        // When the `.bak` mirror was used, say why the primary was
        // distrusted — "restored from backup" alone hides the evidence
        // (torn write? CRC mismatch? missing file?) the operator needs.
        record(kind, RecoveryAction::kRestart, backoff,
               detail_text + " -> restarted from " + used +
                   (primary_error.empty()
                        ? std::string{}
                        : " (primary rejected: " + primary_error + ")"));
        if (auditor_) auditor_->on_recovery();
        return;
      } catch (const Error& disk_error) {
        escalate(kind, detail_text + "; ring and checkpoint both unusable (" +
                           disk_error.what() + ")");
        return;
      }
    }
  }

  void escalate(FailureKind kind, const std::string& detail_text) {
    auto& metrics = detail::supervisor_metrics();
    metrics.escalations.add();
    record(kind, RecoveryAction::kEscalate, 0.0, detail_text);
    report_.final_error = std::string(failure_kind_name(kind)) + ": " +
                          detail_text + " (after " +
                          std::to_string(attempts_) + " recovery attempts)";
    escalated_ = true;
  }

  void snapshot() {
    util::BinaryWriter w;
    sim_->save_checkpoint(w);
    ring_.push(sim_->state().step, w.buffer());
    ref_energy_ = sim_->potential_energy() + sim_->kinetic_energy();
    ref_step_ = sim_->state().step;
    ++report_.snapshots;
    detail::supervisor_metrics().snapshot_bytes.set(
        static_cast<double>(ring_.bytes()));
    if (!config_.checkpoint_path.empty() && mirror_enabled_) {
      write_mirror(w.buffer());
    }
  }

  /// The disk mirror gets its own local retry/degrade loop: a full disk
  /// must not kill an otherwise healthy run.
  void write_mirror(const std::string& blob) {
    auto& metrics = detail::supervisor_metrics();
    const std::string encoded = io::encode_checkpoint({{"sim", blob}});
    for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
      try {
        if (attempt == 0) {
          std::string rejected = io::rotate_backup(config_.checkpoint_path);
          if (!rejected.empty()) {
            // A corrupt primary discarded at rotation is a detected fault:
            // put the verification failure in the report instead of
            // silently deleting the evidence.
            record(FailureKind::kIo, RecoveryAction::kDegrade, 0.0,
                   "checkpoint primary failed verification at rotation (" +
                       rejected + "); previous backup retained");
          }
        }
        io::write_file_atomic(config_.checkpoint_path, encoded);
        return;
      } catch (const IoError& e) {
        ++report_.faults_detected;
        metrics.faults.add();
        if (attempt == config_.max_retries) {
          mirror_enabled_ = false;
          metrics.mirror_degrades.add();
          record(FailureKind::kIo, RecoveryAction::kDegrade, 0.0,
                 std::string(e.what()) +
                     " -> checkpoint mirror disabled; run continues on the "
                     "in-memory ring");
          return;
        }
        const double backoff = backoff_cost(attempt);
        ++report_.retries;
        metrics.retries.add();
        report_.recovery_modeled_s += backoff;
        record(FailureKind::kIo, RecoveryAction::kRetry, backoff, e.what());
      }
    }
  }

  [[nodiscard]] double backoff_cost(int attempt) const {
    double b = config_.backoff_initial_s;
    for (int i = 0; i < attempt; ++i) b *= config_.backoff_factor;
    return b;
  }

  void record(FailureKind kind, RecoveryAction action, double backoff,
              std::string detail_text) {
    report_.events.push_back(RecoveryEvent{sim_->state().step, kind, action,
                                           backoff, std::move(detail_text)});
  }

  Sim* sim_;
  SupervisorConfig config_;
  SnapshotRing ring_;
  RecoveryReport report_;
  std::optional<Auditor<Sim>> auditor_;
  int attempts_ = 0;  ///< recovery attempts in the current failure episode
  int corruption_episodes_ = 0;  ///< lifetime SDC episodes (never resets)
  bool escalated_ = false;
  bool mirror_enabled_ = true;
  double ref_energy_ = 0.0;
  uint64_t ref_step_ = 0;
  size_t last_alive_ = 0;
};

}  // namespace antmd::resilience
