#include "resilience/health.hpp"

namespace antmd::resilience {

const char* policy_name(HealthPolicy policy) {
  switch (policy) {
    case HealthPolicy::kThrow:
      return "throw";
    case HealthPolicy::kRollback:
      return "rollback";
  }
  return "unknown";
}

}  // namespace antmd::resilience
