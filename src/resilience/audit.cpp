#include "resilience/audit.hpp"

#include <atomic>
#include <cstring>

namespace antmd::resilience {

void AuditConfig::validate() const {
  if (interval < 0) {
    throw ConfigError("audit interval must be >= 0 (0 = off)");
  }
  if (shadow_window < 0) {
    throw ConfigError("audit shadow_window must be >= 0 (0 = full interval)");
  }
  if (scrub_interval < 0) {
    throw ConfigError("audit scrub_interval must be >= 0 (0 = every audit)");
  }
  if (max_recoveries < 1) {
    throw ConfigError("audit max_recoveries must be >= 1");
  }
}

std::string StateDigest::diff(const StateDigest& other) const {
  std::string out;
  auto note = [&](bool same, const char* name) {
    if (same) return;
    if (!out.empty()) out += ",";
    out += name;
  };
  note(positions == other.positions, "positions");
  note(velocities == other.velocities, "velocities");
  note(box_clock == other.box_clock, "box_clock");
  note(forces == other.forces, "forces");
  note(energies == other.energies, "energies");
  note(driver == other.driver, "driver");
  return out.empty() ? "none" : out;
}

namespace {

std::atomic<int>& audit_refcount() {
  static std::atomic<int> n{0};
  return n;
}

}  // namespace

bool audit_enabled() {
  return audit_refcount().load(std::memory_order_relaxed) > 0;
}

namespace detail {

void add_audit_refcount(int delta) {
  audit_refcount().fetch_add(delta, std::memory_order_relaxed);
}

AuditMetrics& audit_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static AuditMetrics metrics{
      reg.counter("resilience.audit.audits.count"),
      reg.counter("resilience.audit.shadow_replays.count"),
      reg.counter("resilience.audit.shadow_steps.count"),
      reg.counter("resilience.audit.scrubs.count"),
      reg.counter("resilience.audit.scrub_repairs.count"),
      reg.counter("resilience.audit.corruptions.count"),
      reg.counter("resilience.audit.time_ns"),
      reg.gauge("resilience.audit.snapshot_bytes")};
  return metrics;
}

}  // namespace detail

void Scrubber::add_region(std::string name, void* data, size_t bytes) {
  if (bytes == 0 || data == nullptr) return;
  Region r;
  r.name = std::move(name);
  r.data = static_cast<unsigned char*>(data);
  r.bytes = bytes;
  r.golden_crc = util::crc64(data, bytes);
  r.mirror.assign(r.data, r.data + bytes);
  total_bytes_ += bytes;
  regions_.push_back(std::move(r));
}

Scrubber::ScrubResult Scrubber::scrub() {
  ScrubResult result;
  for (Region& r : regions_) {
    ++result.regions_checked;
    if (util::crc64(r.data, r.bytes) == r.golden_crc) continue;
    std::memcpy(r.data, r.mirror.data(), r.bytes);
    ++result.repairs;
    if (!result.detail.empty()) result.detail += ",";
    result.detail += r.name;
  }
  return result;
}

std::string Scrubber::flip_bit(uint64_t bit_index) {
  if (total_bytes_ == 0) return {};
  uint64_t bit = bit_index % (total_bytes_ * 8);
  for (Region& r : regions_) {
    const uint64_t region_bits = r.bytes * 8;
    if (bit < region_bits) {
      r.data[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      return r.name;
    }
    bit -= region_bits;
  }
  return {};
}

}  // namespace antmd::resilience
