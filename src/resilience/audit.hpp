// Auditor: the silent-data-corruption (SDC) defense layer.
//
// Nothing in the failure model so far reports a flipped bit: a cosmic-ray
// hit in position state, a packed Hermite table, or a retained snapshot
// buffer raises no exception and trips no health threshold until the
// trajectory is long poisoned.  The repo's fixed-point determinism is what
// makes such corruption *detectable*: two executions of the same step
// interval must agree byte-for-byte, so divergence is proof of corruption,
// not noise.  The auditor exploits that with three mechanisms:
//
//   digest     — per-block CRC-64 over the fixed-point dynamic state
//                (positions, velocities, box/clock, force quanta, energy
//                accumulators, and the full driver checkpoint covering
//                thermostat/barostat/k-space internals) at a configurable
//                audit stride
//   shadow     — re-executes the last `shadow_window` steps from a retained
//                snapshot and compares digests bit-for-bit; determinism
//                guarantees equality, so any mismatch localizes corruption
//                to an interval and a state block.  On a match the replay
//                lands bitwise back on the live state, so verification is
//                invisible to the trajectory
//   scrub      — verifies registered static regions (packed spline tables,
//                topology arrays, exclusion lists) against golden CRC-64s
//                taken at registration and repairs from a pristine mirror
//                on mismatch
//
// Detection feeds resilience::Supervisor as FailureKind::kSilentCorruption;
// recovery is a snapshot-ring rollback to the last *verified* audit point
// (with auditing on, only verified blobs enter the ring), after which
// honest re-execution produces a trajectory bit-identical to the fault-free
// run.  Injection (util::fault kBitFlipState / kBitFlipTable /
// kBitFlipCheckpointBuffer) is polled once per step inside after_step(), so
// the physics hot paths gain no new loads; with auditing off the engines
// run byte-for-byte the same code as before.
//
// Coverage/cost dial: shadow_window = 0 replays the whole audit interval —
// every state flip in the interval is caught at the next audit point, at
// roughly one redundant execution of the interval (the information-
// theoretic price of catching consumed-state flips).  A small window (the
// default) bounds the overhead to ~window/interval while still catching
// flips landing in the window before each audit; scrubbing and the
// retained-buffer CRC stay at full coverage either way.  DESIGN.md
// ("Failure model & recovery", SDC section) documents the trade.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ff/energy.hpp"
#include "md/engine_api.hpp"
#include "md/state.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/serialize.hpp"

namespace antmd::resilience {

struct AuditConfig {
  /// Steps between audits; 0 disables the auditor entirely.
  int interval = 0;
  /// Steps re-executed per audit (clamped to the interval); 0 = replay the
  /// whole interval (full coverage, ~2x compute inside the interval).
  int shadow_window = 2;
  /// Steps between static-data scrubs; 0 = scrub at every audit point.
  int scrub_interval = 0;
  /// Corruption episodes tolerated before the supervisor escalates (and
  /// the fleet quarantines the run).  Counted separately from transient
  /// retries: repeat corruption is a sick node, not bad luck.
  int max_recoveries = 3;

  /// Throws ConfigError on out-of-range fields (negative strides/budgets).
  void validate() const;
};

/// Per-block CRC-64 digest of the dynamic simulation state.  Blocks are
/// split so a mismatch names the corrupted structure, not just "state".
struct StateDigest {
  uint64_t positions = 0;
  uint64_t velocities = 0;
  uint64_t box_clock = 0;  ///< box edges + simulation time + step counter
  uint64_t forces = 0;     ///< fixed-point force accumulator quanta
  uint64_t energies = 0;   ///< per-term energy accumulator quanta
  uint64_t driver = 0;     ///< determinism-contract checkpoint prefix:
                           ///< thermostat RNG, timestep, k-space cache
                           ///< (performance accounting is telemetry and
                           ///< excluded — replay cadence legitimately
                           ///< shifts it without moving the trajectory)

  friend bool operator==(const StateDigest&, const StateDigest&) = default;

  /// Names of the blocks that differ, comma-separated ("positions,forces").
  [[nodiscard]] std::string diff(const StateDigest& other) const;
};

/// True while at least one Auditor is alive — one relaxed load.  With no
/// auditor the engines and supervisor run exactly the pre-audit code; this
/// gate exists so cheap call sites (metrics, scripts) can ask without
/// touching auditor objects.
[[nodiscard]] bool audit_enabled();

namespace detail {

void add_audit_refcount(int delta);

struct AuditMetrics {
  obs::Counter& audits;
  obs::Counter& shadow_replays;
  obs::Counter& shadow_steps;
  obs::Counter& scrubs;
  obs::Counter& scrub_repairs;
  obs::Counter& corruptions;
  obs::Counter& time_ns;  ///< audit walltime, its own phase bucket
  obs::Gauge& snapshot_bytes;
};

AuditMetrics& audit_metrics();

}  // namespace detail

/// Golden-CRC verification and repair of static data regions.  Regions are
/// registered once after construction (tables and topology are immutable
/// for the life of a run); registration captures a CRC-64 and a pristine
/// byte mirror.  scrub() re-CRCs every region and memcpy-repairs any
/// mismatch from the mirror.  A repair is still reported as corruption —
/// forces computed while the region was corrupt have already tainted the
/// dynamic state, so the caller must roll back as well as repair.
class Scrubber {
 public:
  /// Registers a region; the pointer must stay valid (same address) for the
  /// scrubber's lifetime.  Zero-length regions are ignored.
  void add_region(std::string name, void* data, size_t bytes);

  /// Registers every region an object exposes via visit_scrub_regions()
  /// (ForceField, Topology, PairTableSet, RadialTable).
  template <typename T>
  void add_object(T& object) {
    object.visit_scrub_regions([this](const char* name, void* data,
                                      size_t bytes) {
      add_region(name, data, bytes);
    });
  }

  struct ScrubResult {
    uint64_t regions_checked = 0;
    uint64_t repairs = 0;
    std::string detail;  ///< names of repaired regions, comma-separated
  };

  /// Verifies every region, repairing mismatches from the mirror.
  [[nodiscard]] ScrubResult scrub();

  [[nodiscard]] size_t region_count() const { return regions_.size(); }
  [[nodiscard]] size_t total_bytes() const { return total_bytes_; }

  /// Deterministic injection hook (kBitFlipTable): flips one bit of the
  /// *live* data, addressed by a global bit index across all regions in
  /// registration order (wrapped modulo the total bit count).  Returns the
  /// name of the region hit, or empty when nothing is registered.
  std::string flip_bit(uint64_t bit_index);

 private:
  struct Region {
    std::string name;
    unsigned char* data = nullptr;
    size_t bytes = 0;
    uint64_t golden_crc = 0;
    std::vector<unsigned char> mirror;
  };
  std::vector<Region> regions_;
  size_t total_bytes_ = 0;
};

/// Computes the per-block digest of an engine's live state.  The virial is
/// deliberately excluded: it is double-precision barostat input outside
/// the determinism contract (ff/energy.hpp).
template <typename Sim>
[[nodiscard]] StateDigest digest_state(const Sim& sim) {
  StateDigest d;
  const State& s = sim.state();
  d.positions = util::crc64(s.positions.data(),
                            s.positions.size() * sizeof(Vec3));
  d.velocities = util::crc64(s.velocities.data(),
                             s.velocities.size() * sizeof(Vec3));
  uint64_t c = util::crc64_init();
  const Vec3 edges = s.box.edges();
  c = util::crc64_update(c, &edges, sizeof(edges));
  c = util::crc64_update(c, &s.time, sizeof(s.time));
  c = util::crc64_update(c, &s.step, sizeof(s.step));
  d.box_clock = util::crc64_final(c);

  const ForceResult& fr = sim.forces();
  c = util::crc64_init();
  for (size_t i = 0; i < fr.forces.size(); ++i) {
    const auto q = fr.forces.quanta(i);
    c = util::crc64_update(c, q.data(), sizeof(q));
  }
  d.forces = util::crc64_final(c);

  const EnergyBreakdown& e = fr.energy;
  const int64_t raws[] = {e.bond.raw(),          e.angle.raw(),
                          e.dihedral.raw(),      e.vdw.raw(),
                          e.coulomb_real.raw(),  e.coulomb_kspace.raw(),
                          e.coulomb_self.raw(),  e.pair14.raw(),
                          e.restraint.raw(),     e.external.raw()};
  d.energies = util::crc64(raws, sizeof(raws));

  util::BinaryWriter w;
  if constexpr (requires { sim.save_physics_checkpoint(w); }) {
    sim.save_physics_checkpoint(w);
  } else {
    sim.save_checkpoint(w);
  }
  d.driver = util::crc64(w.buffer().data(), w.buffer().size());
  return d;
}

/// Verdict of one after_step() poll.
struct AuditVerdict {
  bool corrupted = false;
  std::string detail;
};

/// Running totals for reports and tests.
struct AuditStats {
  uint64_t audits = 0;
  uint64_t shadow_replays = 0;
  uint64_t shadow_steps = 0;
  uint64_t scrubs = 0;
  uint64_t scrub_repairs = 0;
  uint64_t corruptions = 0;
};

template <md::EngineApi Sim>
class Auditor {
 public:
  /// `on_verified(step, blob)` is invoked with the serialized state every
  /// time an audit passes clean — the supervisor wires it to its snapshot
  /// ring so rollback targets are always verified.  `scrubber` may be null
  /// (no static regions registered); it must outlive the auditor.
  Auditor(Sim& sim, AuditConfig config, Scrubber* scrubber = nullptr,
          std::function<void(uint64_t, const std::string&)> on_verified = {})
      : sim_(&sim),
        config_(std::move(config)),
        scrubber_(scrubber),
        on_verified_(std::move(on_verified)) {
    config_.validate();
    if (config_.interval < 1) {
      throw ConfigError("auditor needs interval >= 1 (0 means: do not "
                        "construct an Auditor at all)");
    }
    window_ = config_.shadow_window < 1
                  ? static_cast<uint64_t>(config_.interval)
                  : std::min<uint64_t>(
                        static_cast<uint64_t>(config_.shadow_window),
                        static_cast<uint64_t>(config_.interval));
    detail::add_audit_refcount(1);
    reschedule();
  }

  ~Auditor() { detail::add_audit_refcount(-1); }
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Polls injection, captures the shadow baseline when due, and audits
  /// when due.  Call after every completed step; cheap (a few integer
  /// compares) on non-audit steps.
  [[nodiscard]] AuditVerdict after_step() {
    md::WallTimer timer;
    inject_faults();
    const uint64_t step = sim_->state().step;
    AuditVerdict verdict;
    if (step >= next_audit_) {
      verdict = audit_now();
      reschedule();
    } else if (step >= next_capture_ && !have_baseline_) {
      capture_baseline();
    }
    charge(timer.seconds());
    return verdict;
  }

  /// Re-baselines after any supervisor rollback/restart: the retained
  /// snapshot and schedule refer to a timeline that no longer exists.
  void on_recovery() {
    have_baseline_ = false;
    baseline_blob_.clear();
    reschedule();
  }

  [[nodiscard]] const AuditStats& stats() const { return stats_; }
  [[nodiscard]] const AuditConfig& config() const { return config_; }
  /// Effective replay window in steps (shadow_window clamped to interval).
  [[nodiscard]] uint64_t window() const { return window_; }

 private:
  void reschedule() {
    const uint64_t step = sim_->state().step;
    next_audit_ = step + static_cast<uint64_t>(config_.interval);
    next_capture_ = next_audit_ - window_;
    if (scrubber_ && next_scrub_ <= step) {
      next_scrub_ = step + scrub_stride();
    }
    // Full-interval window: the baseline is the (verified) state right now.
    if (window_ == static_cast<uint64_t>(config_.interval)) {
      capture_baseline();
    }
  }

  [[nodiscard]] uint64_t scrub_stride() const {
    return config_.scrub_interval > 0
               ? static_cast<uint64_t>(config_.scrub_interval)
               : static_cast<uint64_t>(config_.interval);
  }

  void capture_baseline() {
    util::BinaryWriter w;
    sim_->save_checkpoint(w);
    baseline_blob_ = w.buffer();
    baseline_step_ = sim_->state().step;
    baseline_crc_ = util::crc64(baseline_blob_.data(),
                                baseline_blob_.size());
    have_baseline_ = true;
    detail::audit_metrics().snapshot_bytes.set(
        static_cast<double>(baseline_blob_.size()));
  }

  /// Deterministic SDC injection, polled once per completed step.  The
  /// flips mutate live data silently — exactly what a particle strike
  /// does — and only the audit machinery can notice.
  void inject_faults() {
    uint64_t payload = 0;
    if (fault::should_fire(fault::FaultKind::kBitFlipState, &payload)) {
      flip_state_bit(payload);
    }
    if (scrubber_ &&
        fault::should_fire(fault::FaultKind::kBitFlipTable, &payload)) {
      scrubber_->flip_bit(payload);
    }
    if (have_baseline_ &&
        fault::should_fire(fault::FaultKind::kBitFlipCheckpointBuffer,
                           &payload)) {
      std::string& b = baseline_blob_;
      if (!b.empty()) {
        const uint64_t bit = payload % (b.size() * 8);
        b[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(b[bit / 8]) ^ (1u << (bit % 8)));
      }
    }
  }

  /// Flips one bit of the positions/velocities arrays, addressed by a
  /// global bit index over positions||velocities (wrapped).
  void flip_state_bit(uint64_t bit_index) {
    State& s = sim_->mutable_state();
    const size_t pos_bytes = s.positions.size() * sizeof(Vec3);
    const size_t vel_bytes = s.velocities.size() * sizeof(Vec3);
    const size_t total_bits = (pos_bytes + vel_bytes) * 8;
    if (total_bits == 0) return;
    const uint64_t bit = bit_index % total_bits;
    const size_t byte = bit / 8;
    unsigned char* base =
        byte < pos_bytes
            ? reinterpret_cast<unsigned char*>(s.positions.data()) + byte
            : reinterpret_cast<unsigned char*>(s.velocities.data()) +
                  (byte - pos_bytes);
    *base ^= static_cast<unsigned char>(1u << (bit % 8));
  }

  [[nodiscard]] AuditVerdict audit_now() {
    auto& metrics = detail::audit_metrics();
    ++stats_.audits;
    metrics.audits.add();
    AuditVerdict verdict;

    // 1. Static-data scrub.  A repair means forces already computed with
    // the corrupt region tainted the dynamic state: report corruption so
    // the supervisor rolls back even though the region itself is fixed.
    const uint64_t step = sim_->state().step;
    if (scrubber_ && step >= next_scrub_) {
      ++stats_.scrubs;
      metrics.scrubs.add();
      next_scrub_ = step + scrub_stride();
      Scrubber::ScrubResult r = scrubber_->scrub();
      if (r.repairs > 0) {
        stats_.scrub_repairs += r.repairs;
        metrics.scrub_repairs.add(r.repairs);
        return flag_corruption("static data corrupt (repaired from golden "
                              "mirror): " + r.detail);
      }
    }

    // 2. Shadow re-execution from the retained baseline.
    if (have_baseline_) {
      if (util::crc64(baseline_blob_.data(), baseline_blob_.size()) !=
          baseline_crc_) {
        // The retained buffer itself took the hit; the live state is not
        // implicated but the rollback source would be, so report it — the
        // supervisor's ring holds an independent intact copy.
        have_baseline_ = false;
        return flag_corruption("retained audit snapshot buffer failed its "
                              "CRC (bit flip in checkpoint buffer)");
      }
      const StateDigest live = digest_state(*sim_);
      util::BinaryWriter live_writer;
      sim_->save_checkpoint(live_writer);

      StateDigest replayed;
      {
        // Replayed steps must be invisible: no fault events consumed, no
        // observer callbacks, no metrics-phase inflation.
        fault::InjectionPause pause;
        observers_off();
        obs::ScopedTelemetry telemetry_off(false);
        try {
          util::BinaryReader r(baseline_blob_);
          sim_->restore_checkpoint(r);
          while (sim_->state().step < step) sim_->step();
          ++stats_.shadow_replays;
          stats_.shadow_steps += step - baseline_step_;
          replayed = digest_state(*sim_);
          // Hand the live timeline back in BOTH outcomes.  On a mismatch
          // the supervisor decides recovery and its bookkeeping must see
          // the corrupted step counter; on a match the replay trajectory
          // is bitwise the live one, but replay-path accounting (modeled
          // time, transport counters after the restore's neighbor-list
          // rebuild) may differ, and verification must be invisible to
          // the run's telemetry too.
          util::BinaryReader lr(live_writer.buffer());
          sim_->restore_checkpoint(lr);
        } catch (...) {
          observers_on();
          throw;
        }
        observers_on();
      }
      metrics.shadow_replays.add();
      metrics.shadow_steps.add(step - baseline_step_);
      if (replayed != live) {
        return flag_corruption(
            "shadow replay of steps [" + std::to_string(baseline_step_) +
            ", " + std::to_string(step) + "] diverged in blocks: " +
            replayed.diff(live));
      }
      // Digests match: determinism says the replay landed bitwise back on
      // the live state — the run continues as if nothing happened.
    }

    have_baseline_ = false;
    if (on_verified_) {
      util::BinaryWriter w;
      sim_->save_checkpoint(w);
      on_verified_(step, w.buffer());
    }
    return verdict;
  }

  AuditVerdict flag_corruption(std::string detail) {
    ++stats_.corruptions;
    detail::audit_metrics().corruptions.add();
    return {true, std::move(detail)};
  }

  void observers_off() {
    if constexpr (requires { sim_->set_observers_enabled(false); }) {
      sim_->set_observers_enabled(false);
    }
  }
  void observers_on() {
    if constexpr (requires { sim_->set_observers_enabled(true); }) {
      sim_->set_observers_enabled(true);
    }
  }

  void charge(double seconds) {
    detail::audit_metrics().time_ns.add(
        static_cast<uint64_t>(seconds * 1e9));
    if constexpr (requires { sim_->charge_audit(seconds); }) {
      sim_->charge_audit(seconds);
    }
  }

  Sim* sim_;
  AuditConfig config_;
  Scrubber* scrubber_;
  std::function<void(uint64_t, const std::string&)> on_verified_;
  AuditStats stats_;
  uint64_t window_ = 0;
  uint64_t next_audit_ = 0;
  uint64_t next_capture_ = 0;
  uint64_t next_scrub_ = 0;
  bool have_baseline_ = false;
  std::string baseline_blob_;
  uint64_t baseline_step_ = 0;
  uint64_t baseline_crc_ = 0;
};

}  // namespace antmd::resilience
