// HealthGuard: numerical health monitoring with crash-safe recovery.
//
// Wraps a simulation driver (md::Simulation or runtime::MachineSimulation —
// anything exposing the common step/state/forces/checkpoint API) and runs it
// under guard: after each step it checks for non-finite or exploding
// positions/forces, temperature spikes, energy drift and SHAKE
// non-convergence.  On a violation it either throws a typed NumericalError
// (HealthPolicy::kThrow) or degrades gracefully (HealthPolicy::kRollback):
// restore the last good in-memory checkpoint, shrink the timestep and retry,
// up to a bounded retry budget.
//
// The guard keeps its last-good checkpoint in memory (a serialized
// Checkpointable buffer) and can mirror it to disk as a v2 container so an
// external driver can resume after a process crash.
#pragma once

#include <cmath>
#include <string>

#include "io/checkpoint.hpp"
#include "md/state.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace antmd::resilience {

namespace detail {

/// Process-wide telemetry for every HealthGuard instantiation (the registry
/// deduplicates by name, so all guarded drivers share these).
struct GuardMetrics {
  obs::Counter& checks;
  obs::Counter& violations;
  obs::Counter& rollbacks;
  obs::Counter& snapshots;
};

inline GuardMetrics& guard_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static GuardMetrics m{reg.counter("resilience.health.check.count"),
                        reg.counter("resilience.health.violation.count"),
                        reg.counter("resilience.health.rollback.count"),
                        reg.counter("resilience.health.snapshot.count")};
  return m;
}

}  // namespace detail

enum class HealthPolicy {
  kThrow,     ///< raise NumericalError on the first violation
  kRollback,  ///< restore last good checkpoint, reduce dt, retry
};

struct HealthConfig {
  /// Positions: any non-finite component always trips; additionally any
  /// component with |x| above this bound (Å).
  double max_abs_position = 1e6;
  /// Forces: any non-finite component always trips; additionally any
  /// component above this bound (kcal/mol/Å).  The fault layer's poison
  /// sentinel (fault::kPoisonQuanta) dequantizes far above any physical
  /// force, so injected "NaN" forces are caught here.
  double max_force = 1e8;
  /// Instantaneous temperature bound (K); 0 disables.
  double max_temperature_k = 1e5;
  /// Allowed |Δ(potential + kinetic)| per step since the last good
  /// checkpoint (kcal/mol); 0 disables.  Use only for NVE-like runs — a
  /// thermostat exchanges energy with the bath legitimately.
  double max_energy_drift = 0.0;
  /// Largest relative constraint violation tolerated after a step
  /// (SHAKE non-convergence detector); 0 disables.
  double max_constraint_violation = 1e-4;
  /// Check every N steps (1 = every step).
  int check_interval = 1;
  /// Snapshot the last-good checkpoint every N steps; 0 keeps only the
  /// initial snapshot.
  int checkpoint_interval = 100;
  /// When non-empty, every snapshot is also written (atomically, CRC'd) to
  /// this path as a v2 checkpoint container with a single "sim" section.
  std::string checkpoint_path;
  HealthPolicy policy = HealthPolicy::kRollback;
  /// Rollbacks allowed before giving up and throwing anyway.
  int max_retries = 3;
  /// Timestep multiplier applied at each rollback (degrade-and-continue).
  double dt_scale_on_retry = 0.5;
};

/// Short name for logs/reports ("throw" / "rollback").
[[nodiscard]] const char* policy_name(HealthPolicy policy);

struct HealthReport {
  uint64_t steps = 0;        ///< guarded steps completed (incl. re-runs)
  uint64_t checks = 0;
  uint64_t violations = 0;
  uint64_t rollbacks = 0;
  uint64_t snapshots = 0;
  double final_dt_fs = 0.0;
  std::string last_violation;  ///< empty if the run stayed healthy
};

/// Returns a human-readable description of the first health violation found,
/// or an empty string.  `Sim` must expose state(), forces(), temperature()
/// and constraints().
template <typename Sim>
std::string find_violation(const Sim& sim, const HealthConfig& config,
                           double reference_energy, uint64_t reference_step) {
  const State& state = sim.state();
  for (size_t i = 0; i < state.positions.size(); ++i) {
    const Vec3& p = state.positions[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y) || !std::isfinite(p.z)) {
      return "non-finite position of atom " + std::to_string(i);
    }
    if (std::fabs(p.x) > config.max_abs_position ||
        std::fabs(p.y) > config.max_abs_position ||
        std::fabs(p.z) > config.max_abs_position) {
      return "position of atom " + std::to_string(i) + " exceeds " +
             std::to_string(config.max_abs_position) + " A";
    }
  }
  const auto& forces = sim.forces().forces;
  for (size_t i = 0; i < forces.size(); ++i) {
    Vec3 f = forces.force(i);
    if (!std::isfinite(f.x) || !std::isfinite(f.y) || !std::isfinite(f.z)) {
      return "non-finite force on atom " + std::to_string(i);
    }
    if (std::fabs(f.x) > config.max_force ||
        std::fabs(f.y) > config.max_force ||
        std::fabs(f.z) > config.max_force) {
      return "force on atom " + std::to_string(i) + " exceeds " +
             std::to_string(config.max_force) + " kcal/mol/A";
    }
  }
  if (config.max_temperature_k > 0) {
    double t = sim.temperature();
    if (!std::isfinite(t) || t > config.max_temperature_k) {
      return "temperature " + std::to_string(t) + " K exceeds " +
             std::to_string(config.max_temperature_k) + " K";
    }
  }
  if (config.max_energy_drift > 0 && state.step > reference_step) {
    double e = sim.potential_energy() + sim.kinetic_energy();
    double allowed = config.max_energy_drift *
                     static_cast<double>(state.step - reference_step);
    if (!std::isfinite(e) ||
        std::fabs(e - reference_energy) > allowed) {
      return "energy drifted by " +
             std::to_string(e - reference_energy) + " kcal/mol since step " +
             std::to_string(reference_step);
    }
  }
  if (config.max_constraint_violation > 0 && !sim.constraints().empty()) {
    double v = sim.constraints().max_violation(state.positions, state.box);
    if (!std::isfinite(v) || v > config.max_constraint_violation) {
      return "constraint violation " + std::to_string(v) + " exceeds " +
             std::to_string(config.max_constraint_violation);
    }
  }
  return {};
}

template <typename Sim>
class HealthGuard {
 public:
  HealthGuard(Sim& sim, HealthConfig config)
      : sim_(&sim), config_(std::move(config)) {
    if (config_.check_interval < 1) {
      throw ConfigError("health check_interval must be >= 1");
    }
    if (config_.policy == HealthPolicy::kRollback &&
        !(config_.dt_scale_on_retry > 0 && config_.dt_scale_on_retry <= 1)) {
      throw ConfigError("dt_scale_on_retry must be in (0, 1]");
    }
  }

  /// Runs the simulation forward until its step counter has advanced by
  /// `steps` beyond where it started, checking health along the way.  A
  /// rollback rewinds the step counter, so the guarded run still delivers
  /// the full number of steps (at a possibly reduced timestep) unless the
  /// retry budget is exhausted — then the violation escalates to a
  /// NumericalError.
  HealthReport run(size_t steps) {
    const uint64_t target = sim_->state().step + steps;
    int retries = 0;
    snapshot();
    while (sim_->state().step < target) {
      sim_->step();
      ++report_.steps;
      if (sim_->state().step %
              static_cast<uint64_t>(config_.check_interval) ==
          0) {
        ++report_.checks;
        detail::guard_metrics().checks.add();
        std::string violation = find_violation(*sim_, config_,
                                               reference_energy_,
                                               last_good_step_);
        if (!violation.empty()) {
          ++report_.violations;
          detail::guard_metrics().violations.add();
          report_.last_violation = violation;
          if (config_.policy == HealthPolicy::kThrow ||
              retries >= config_.max_retries) {
            throw NumericalError(
                "health guard: " + violation + " at step " +
                std::to_string(sim_->state().step) +
                (retries ? " (after " + std::to_string(retries) +
                               " rollback(s))"
                         : ""));
          }
          rollback();
          ++retries;
          continue;
        }
      }
      if (config_.checkpoint_interval > 0 &&
          sim_->state().step %
                  static_cast<uint64_t>(config_.checkpoint_interval) ==
              0) {
        snapshot();
      }
    }
    report_.final_dt_fs = sim_->timestep_fs();
    return report_;
  }

  [[nodiscard]] const HealthReport& report() const { return report_; }
  [[nodiscard]] uint64_t last_good_step() const { return last_good_step_; }

 private:
  void snapshot() {
    util::BinaryWriter w;
    sim_->save_checkpoint(w);
    last_good_ = w.buffer();
    last_good_step_ = sim_->state().step;
    reference_energy_ = sim_->potential_energy() + sim_->kinetic_energy();
    ++report_.snapshots;
    detail::guard_metrics().snapshots.add();
    if (!config_.checkpoint_path.empty()) {
      // Keep the previous generation as a `.bak` mirror: if this write
      // lands torn (and the CRC rejects it at resume), the prior good
      // checkpoint is still restorable.
      io::rotate_backup(config_.checkpoint_path);
      io::write_file_atomic(config_.checkpoint_path,
                            io::encode_checkpoint({{"sim", last_good_}}));
    }
  }

  void rollback() {
    util::BinaryReader r(last_good_);
    sim_->restore_checkpoint(r);
    ++report_.rollbacks;
    detail::guard_metrics().rollbacks.add();
    // restore_checkpoint rewound dt to the snapshot's value; compound the
    // reduction across retries so repeated rollbacks keep shrinking it.
    dt_factor_ *= config_.dt_scale_on_retry;
    sim_->set_timestep_fs(sim_->timestep_fs() * dt_factor_);
  }

  Sim* sim_;
  HealthConfig config_;
  HealthReport report_;
  std::string last_good_;
  uint64_t last_good_step_ = 0;
  double reference_energy_ = 0.0;
  double dt_factor_ = 1.0;  ///< cumulative timestep reduction from retries
};

}  // namespace antmd::resilience
