#include "sampling/torsion_meta.hpp"

#include <algorithm>
#include <cmath>

#include "ff/bonded.hpp"
#include "util/error.hpp"

namespace antmd::sampling {

TorsionMetadynamics::TorsionMetadynamics(md::Simulation& sim, uint32_t i,
                                         uint32_t j, uint32_t k, uint32_t l,
                                         TorsionMetaConfig config)
    : sim_(&sim), i_(i), j_(j), k_(k), l_(l), config_(config) {
  ANTMD_REQUIRE(config_.bias_factor > 1.0, "bias factor must exceed 1");
  ff::DihedralBias bias;
  bias.i = i;
  bias.j = j;
  bias.k = k;
  bias.l = l;
  bias.potential = [this](double phi) -> std::pair<double, double> {
    double u = 0.0, du = 0.0;
    const double inv2s2 = 1.0 / (2.0 * config_.sigma * config_.sigma);
    for (size_t h = 0; h < centers_.size(); ++h) {
      double d = wrap_angle(phi - centers_[h]);
      double g = heights_[h] * std::exp(-d * d * inv2s2);
      u += g;
      du += -d * 2.0 * inv2s2 * g;
    }
    return {u, du};
  };
  sim_->force_field().add_dihedral_bias(std::move(bias));
}

double TorsionMetadynamics::wrap_angle(double d) {
  while (d > M_PI) d -= 2.0 * M_PI;
  while (d <= -M_PI) d += 2.0 * M_PI;
  return d;
}

double TorsionMetadynamics::current_cv() const {
  const State& s = sim_->state();
  return ff::dihedral_angle(s.positions[i_], s.positions[j_],
                            s.positions[k_], s.positions[l_], s.box);
}

void TorsionMetadynamics::run(size_t steps) {
  for (size_t s = 0; s < steps; ++s) {
    sim_->step();
    if (sim_->state().step %
            static_cast<uint64_t>(config_.deposit_interval) ==
        0) {
      deposit();
    }
  }
}

void TorsionMetadynamics::deposit() {
  double phi = current_cv();
  double kt = 0.001987204259 * sim_->thermostat().temperature_k();
  double h = config_.initial_height *
             std::exp(-bias(phi) / ((config_.bias_factor - 1.0) * kt));
  centers_.push_back(phi);
  heights_.push_back(h);
}

double TorsionMetadynamics::bias(double phi) const {
  double u = 0.0;
  const double inv2s2 = 1.0 / (2.0 * config_.sigma * config_.sigma);
  for (size_t h = 0; h < centers_.size(); ++h) {
    double d = wrap_angle(phi - centers_[h]);
    u += heights_[h] * std::exp(-d * d * inv2s2);
  }
  return u;
}

std::vector<std::pair<double, double>> TorsionMetadynamics::free_energy(
    size_t bins) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(bins);
  const double scale = -config_.bias_factor / (config_.bias_factor - 1.0);
  double fmin = 1e300;
  for (size_t b = 0; b < bins; ++b) {
    double phi = -M_PI + 2.0 * M_PI * (static_cast<double>(b) + 0.5) /
                             static_cast<double>(bins);
    double f = scale * bias(phi);
    out.emplace_back(phi, f);
    fmin = std::min(fmin, f);
  }
  for (auto& [phi, f] : out) f -= fmin;
  return out;
}

}  // namespace antmd::sampling
