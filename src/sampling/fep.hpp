// Free-energy perturbation with soft-core λ-windows.
//
// Decouples all atoms of a chosen LJ type from the rest of the system
// through a ladder of soft-core windows (λ = 1 fully coupled → λ = 0
// decoupled), sampling ΔU to the neighbouring windows for Zwanzig and BAR
// estimates.  On the machine, each window's soft-core functional form is
// just another table in the pair pipelines — the canonical example of the
// tabulated-potential generality mechanism.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ff/forcefield.hpp"
#include "md/simulation.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd::sampling {

struct FepConfig {
  std::vector<double> lambdas = {1.0, 0.8, 0.6, 0.4, 0.2, 0.0};
  double softcore_alpha = 0.5;
  size_t equil_steps = 200;
  size_t prod_steps = 1000;
  int sample_interval = 10;
  md::SimulationConfig md;
};

struct FepWindowSamples {
  double lambda = 0.0;
  std::vector<double> du_to_next;  ///< U(λ_next) - U(λ) sampled at λ
  std::vector<double> du_to_prev;
};

struct FepResult {
  std::vector<FepWindowSamples> windows;
  double delta_f_bar = 0.0;      ///< total ΔF(λ₀→λ_last) via BAR
  double delta_f_zwanzig = 0.0;  ///< via forward exponential averaging
};

class FepDecoupling : public util::Checkpointable {
 public:
  /// Solute = all atoms of `solute_type` in `spec` (e.g. the dimer type).
  /// The spec must outlive this object.
  FepDecoupling(const SystemSpec& spec, uint32_t solute_type,
                ff::NonbondedModel model, FepConfig config);

  /// Runs every window from scratch and assembles the estimate
  /// (equivalent to run_windows over the full ladder + finalize).
  [[nodiscard]] FepResult run();

  /// Resumable interface: advances up to `count` more λ-windows from where
  /// the ladder last stopped and returns how many were actually run.
  /// Progress is window-granular — a checkpoint taken between windows
  /// resumes with the next window's deterministic seed (positions from the
  /// previous window's endpoint), reproducing the uninterrupted ladder
  /// exactly.
  size_t run_windows(size_t count);
  [[nodiscard]] size_t windows_done() const { return windows_done_; }
  /// Assembles the BAR/Zwanzig estimate over all windows sampled so far.
  [[nodiscard]] FepResult finalize() const;

  /// Checkpoint: ladder progress, per-window ΔU samples and the seed
  /// positions for the next window.
  void save_checkpoint(util::BinaryWriter& out) const override;
  void restore_checkpoint(util::BinaryReader& in) override;

  /// Unified driver interface: runs `steps` production steps per window
  /// (overriding config.prod_steps) and caches the estimate in result().
  void run(size_t steps) {
    config_.prod_steps = steps;
    result_ = run();
  }
  /// Last estimate produced by run(size_t).
  [[nodiscard]] const FepResult& result() const {
    ANTMD_REQUIRE(result_.has_value(), "run(steps) has not been called");
    return *result_;
  }

  /// Force field with the solute soft-cored at λ (exposed for tests).
  [[nodiscard]] std::unique_ptr<ForceField> make_field(double lambda) const;

 private:
  const SystemSpec* spec_;
  uint32_t solute_type_;
  ff::NonbondedModel model_;
  FepConfig config_;
  std::optional<FepResult> result_;
  // Resumable-ladder progress.
  size_t windows_done_ = 0;
  std::vector<FepWindowSamples> sampled_;  ///< one entry per finished window
  std::vector<Vec3> seed_positions_;       ///< start of the next window
};

}  // namespace antmd::sampling
