// Free-energy perturbation with soft-core λ-windows.
//
// Decouples all atoms of a chosen LJ type from the rest of the system
// through a ladder of soft-core windows (λ = 1 fully coupled → λ = 0
// decoupled), sampling ΔU to the neighbouring windows for Zwanzig and BAR
// estimates.  On the machine, each window's soft-core functional form is
// just another table in the pair pipelines — the canonical example of the
// tabulated-potential generality mechanism.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ff/forcefield.hpp"
#include "md/simulation.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd::sampling {

struct FepConfig {
  std::vector<double> lambdas = {1.0, 0.8, 0.6, 0.4, 0.2, 0.0};
  double softcore_alpha = 0.5;
  size_t equil_steps = 200;
  size_t prod_steps = 1000;
  int sample_interval = 10;
  md::SimulationConfig md;
};

struct FepWindowSamples {
  double lambda = 0.0;
  std::vector<double> du_to_next;  ///< U(λ_next) - U(λ) sampled at λ
  std::vector<double> du_to_prev;
};

struct FepResult {
  std::vector<FepWindowSamples> windows;
  double delta_f_bar = 0.0;      ///< total ΔF(λ₀→λ_last) via BAR
  double delta_f_zwanzig = 0.0;  ///< via forward exponential averaging
};

class FepDecoupling {
 public:
  /// Solute = all atoms of `solute_type` in `spec` (e.g. the dimer type).
  /// The spec must outlive this object.
  FepDecoupling(const SystemSpec& spec, uint32_t solute_type,
                ff::NonbondedModel model, FepConfig config);

  [[nodiscard]] FepResult run();

  /// Unified driver interface: runs `steps` production steps per window
  /// (overriding config.prod_steps) and caches the estimate in result().
  void run(size_t steps) {
    config_.prod_steps = steps;
    result_ = run();
  }
  /// Last estimate produced by run(size_t).
  [[nodiscard]] const FepResult& result() const {
    ANTMD_REQUIRE(result_.has_value(), "run(steps) has not been called");
    return *result_;
  }

  /// Force field with the solute soft-cored at λ (exposed for tests).
  [[nodiscard]] std::unique_ptr<ForceField> make_field(double lambda) const;

 private:
  const SystemSpec* spec_;
  uint32_t solute_type_;
  ff::NonbondedModel model_;
  FepConfig config_;
  std::optional<FepResult> result_;
};

}  // namespace antmd::sampling
