// Steered MD with work accounting (Jarzynski-style pulling).
//
// Wraps a Simulation whose force field carries a moving-anchor spring and
// integrates the external work dW = ∂U/∂t dt = -2k (r - target) v dt as the
// anchor moves, giving pulling work traces.
#pragma once

#include <vector>

#include "md/simulation.hpp"

namespace antmd::sampling {

class SteeredPull {
 public:
  /// `spring_index` is the value returned by ForceField::add_steered_spring.
  SteeredPull(md::Simulation& sim, size_t spring_index);

  /// Runs `steps`, recording extension and accumulated work every
  /// `record_interval` steps.
  void run(size_t steps, int record_interval = 10);

  [[nodiscard]] double total_work() const { return work_; }
  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& targets() const { return targets_; }
  [[nodiscard]] const std::vector<double>& distances() const {
    return distances_;
  }
  [[nodiscard]] const std::vector<double>& work_trace() const {
    return work_trace_;
  }

 private:
  [[nodiscard]] double current_distance() const;

  md::Simulation* sim_;
  ff::SteeredSpring spring_;
  double work_ = 0.0;
  std::vector<double> times_;
  std::vector<double> targets_;
  std::vector<double> distances_;
  std::vector<double> work_trace_;
};

}  // namespace antmd::sampling
