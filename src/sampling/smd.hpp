// Steered MD with work accounting (Jarzynski-style pulling).
//
// Wraps a Simulation whose force field carries a moving-anchor spring and
// integrates the external work dW = ∂U/∂t dt = -2k (r - target) v dt as the
// anchor moves, giving pulling work traces.
#pragma once

#include <vector>

#include "md/simulation.hpp"

namespace antmd::sampling {

/// Pulling trajectory record (unified sampling-driver interface).
struct SmdResult {
  double total_work = 0.0;  ///< kcal/mol
  std::vector<double> times;
  std::vector<double> targets;
  std::vector<double> distances;
  std::vector<double> work_trace;
};

class SteeredPull {
 public:
  /// `spring_index` is the value returned by ForceField::add_steered_spring.
  SteeredPull(md::Simulation& sim, size_t spring_index);

  /// Runs `steps`, recording extension and accumulated work every
  /// `record_interval` steps.
  void run(size_t steps, int record_interval = 10);

  /// Unified driver accessor (matches the other sampling methods).
  [[nodiscard]] const SmdResult& result() const { return result_; }

  [[nodiscard]] double total_work() const { return result_.total_work; }
  [[nodiscard]] const std::vector<double>& times() const {
    return result_.times;
  }
  [[nodiscard]] const std::vector<double>& targets() const {
    return result_.targets;
  }
  [[nodiscard]] const std::vector<double>& distances() const {
    return result_.distances;
  }
  [[nodiscard]] const std::vector<double>& work_trace() const {
    return result_.work_trace;
  }

 private:
  [[nodiscard]] double current_distance() const;

  md::Simulation* sim_;
  ff::SteeredSpring spring_;
  SmdResult result_;
};

}  // namespace antmd::sampling
