// Well-tempered metadynamics on a torsion collective variable — the
// classic alanine-dipeptide-style workload.  Hills are periodic Gaussians
// on the circle (differences wrapped into (-π, π]).
#pragma once

#include <cstdint>
#include <vector>

#include "md/simulation.hpp"

namespace antmd::sampling {

struct TorsionMetaConfig {
  double initial_height = 0.2;  ///< kcal/mol
  double sigma = 0.3;           ///< radians
  double bias_factor = 8.0;
  int deposit_interval = 50;
};

class TorsionMetadynamics {
 public:
  /// Installs the bias on the (i, j, k, l) torsion of `sim`'s force field.
  TorsionMetadynamics(md::Simulation& sim, uint32_t i, uint32_t j,
                      uint32_t k, uint32_t l, TorsionMetaConfig config);

  void run(size_t steps);

  [[nodiscard]] double bias(double phi) const;
  [[nodiscard]] double current_cv() const;
  [[nodiscard]] size_t hill_count() const { return centers_.size(); }
  /// F(phi) ≈ -(γ/(γ-1)) V(phi), min-shifted, on a uniform grid over
  /// (-π, π].
  [[nodiscard]] std::vector<std::pair<double, double>> free_energy(
      size_t bins) const;

 private:
  void deposit();
  [[nodiscard]] static double wrap_angle(double d);

  md::Simulation* sim_;
  uint32_t i_, j_, k_, l_;
  TorsionMetaConfig config_;
  std::vector<double> centers_;
  std::vector<double> heights_;
};

}  // namespace antmd::sampling
