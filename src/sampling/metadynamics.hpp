// Well-tempered metadynamics on a pair-distance collective variable.
//
// A history-dependent bias of Gaussians is deposited along the CV; in the
// well-tempered variant the deposit height decays with the accumulated bias
// so the estimate converges.  F(ξ) ≈ -(T+ΔT)/ΔT · V(ξ) up to a constant.
#pragma once

#include <cstdint>
#include <vector>

#include "md/simulation.hpp"

namespace antmd::sampling {

/// Deposited-bias summary (unified sampling-driver interface).
struct MetadynamicsResult {
  size_t hill_count = 0;
  double final_cv = 0.0;
  std::vector<double> centers;
  std::vector<double> heights;
};

struct MetadynamicsConfig {
  double initial_height = 0.3;  ///< kcal/mol
  double sigma = 0.25;          ///< Gaussian width in CV units (Å)
  double bias_factor = 8.0;     ///< (T+ΔT)/T, > 1
  int deposit_interval = 50;    ///< MD steps between deposits
  double cv_min = 0.0;          ///< reflective walls for bookkeeping only
  double cv_max = 10.0;
};

class Metadynamics : public util::Checkpointable {
 public:
  /// Installs the bias on the (i, j) pair distance of `sim`'s force field.
  Metadynamics(md::Simulation& sim, uint32_t i, uint32_t j,
               MetadynamicsConfig config);

  void run(size_t steps);

  /// Unified driver accessor (matches the other sampling methods).
  [[nodiscard]] MetadynamicsResult result() const {
    return MetadynamicsResult{centers_.size(), current_cv(), centers_,
                              heights_};
  }

  /// Current bias potential at CV value r.
  [[nodiscard]] double bias(double r) const;
  /// Free-energy estimate on a grid: F(ξ) = -(γ/(γ-1)) V(ξ), min-shifted.
  [[nodiscard]] std::vector<std::pair<double, double>> free_energy(
      size_t bins) const;

  [[nodiscard]] size_t hill_count() const { return centers_.size(); }
  [[nodiscard]] double current_cv() const;

  /// Checkpoint: the deposited hill list (the bias closure reads it live,
  /// so restoring the hills restores the bias force exactly).
  void save_checkpoint(util::BinaryWriter& out) const override;
  void restore_checkpoint(util::BinaryReader& in) override;

 private:
  void deposit();

  md::Simulation* sim_;
  uint32_t i_, j_;
  MetadynamicsConfig config_;
  std::vector<double> centers_;
  std::vector<double> heights_;
};

}  // namespace antmd::sampling
