#include "sampling/fep.hpp"

#include <cmath>

#include "analysis/free_energy.hpp"
#include "obs/metrics.hpp"
#include "sampling/common.hpp"
#include "util/error.hpp"

namespace antmd::sampling {

FepDecoupling::FepDecoupling(const SystemSpec& spec, uint32_t solute_type,
                             ff::NonbondedModel model, FepConfig config)
    : spec_(&spec),
      solute_type_(solute_type),
      model_(model),
      config_(std::move(config)) {
  ANTMD_REQUIRE(config_.lambdas.size() >= 2, "need >= 2 lambda windows");
  ANTMD_REQUIRE(solute_type < spec.topology.type_count(),
                "unknown solute type");
}

std::unique_ptr<ForceField> FepDecoupling::make_field(double lambda) const {
  auto field = std::make_unique<ForceField>(spec_->topology, model_);
  const auto& types = spec_->topology.types();
  const LjType& solute = types[solute_type_];
  for (uint32_t t = 0; t < types.size(); ++t) {
    if (t == solute_type_) continue;  // solute-solute stays fully coupled
    double sigma = 0.5 * (solute.sigma + types[t].sigma);
    double epsilon = std::sqrt(solute.epsilon * types[t].epsilon);
    if (sigma == 0.0 || epsilon == 0.0) continue;
    field->set_custom_pair_table(
        solute_type_, t,
        ff::make_softcore_lj_table(sigma, epsilon, lambda,
                                   config_.softcore_alpha, model_));
  }
  return field;
}

FepResult FepDecoupling::run() {
  // Fresh ladder: discard any resumable progress and run every window.
  windows_done_ = 0;
  sampled_.clear();
  seed_positions_.clear();
  run_windows(config_.lambdas.size());
  return finalize();
}

size_t FepDecoupling::run_windows(size_t count) {
  auto& reg = obs::MetricsRegistry::global();
  static auto& window_count = reg.counter("sampling.fep.window.count");
  static auto& sample_count = reg.counter("sampling.fep.sample.count");
  static auto& windows_done_gauge = reg.gauge("sampling.fep.windows_done");
  const size_t n_win = config_.lambdas.size();
  if (seed_positions_.empty()) seed_positions_ = spec_->positions;

  size_t ran = 0;
  for (; ran < count && windows_done_ < n_win; ++ran) {
    const size_t w = windows_done_;
    const double lambda = config_.lambdas[w];
    FepWindowSamples window;
    window.lambda = lambda;

    auto field = make_field(lambda);
    std::unique_ptr<ForceField> field_next =
        w + 1 < n_win ? make_field(config_.lambdas[w + 1]) : nullptr;
    std::unique_ptr<ForceField> field_prev =
        w > 0 ? make_field(config_.lambdas[w - 1]) : nullptr;

    md::Simulation sim(*field, seed_positions_, spec_->box, config_.md);
    sim.run(config_.equil_steps);

    for (size_t s = 0; s < config_.prod_steps; ++s) {
      sim.step();
      if (sim.state().step %
              static_cast<uint64_t>(config_.sample_interval) !=
          0) {
        continue;
      }
      sample_count.add();
      double u_here = sim.potential_energy();
      const auto& pos = sim.state().positions;
      if (field_next) {
        double u_next = potential_energy(*field_next, pos, sim.state().box);
        window.du_to_next.push_back(u_next - u_here);
      }
      if (field_prev) {
        double u_prev = potential_energy(*field_prev, pos, sim.state().box);
        window.du_to_prev.push_back(u_prev - u_here);
      }
    }
    // Seed the next window from this window's endpoint (stratified start).
    seed_positions_ = sim.state().positions;
    sampled_.push_back(std::move(window));
    ++windows_done_;
    window_count.add();
    if (obs::enabled()) {
      windows_done_gauge.set(static_cast<double>(windows_done_));
    }
  }
  return ran;
}

FepResult FepDecoupling::finalize() const {
  FepResult result;
  result.windows = sampled_;

  double t_k = config_.md.thermostat.temperature_k;
  if (config_.md.thermostat.kind == md::ThermostatKind::kNone) {
    t_k = config_.md.init_temperature_k;
  }
  double bar_total = 0.0, zw_total = 0.0;
  for (size_t w = 0; w + 1 < sampled_.size(); ++w) {
    const auto& fwd = result.windows[w].du_to_next;
    const auto& rev = result.windows[w + 1].du_to_prev;
    zw_total += analysis::zwanzig_delta_f(fwd, t_k);
    bar_total += analysis::bar_delta_f(fwd, rev, t_k);
  }
  result.delta_f_bar = bar_total;
  result.delta_f_zwanzig = zw_total;
  return result;
}

void FepDecoupling::save_checkpoint(util::BinaryWriter& out) const {
  out.write_u64(windows_done_);
  out.write_pod_vector(seed_positions_);
  out.write_u64(sampled_.size());
  for (const FepWindowSamples& w : sampled_) {
    out.write_f64(w.lambda);
    out.write_pod_vector(w.du_to_next);
    out.write_pod_vector(w.du_to_prev);
  }
}

void FepDecoupling::restore_checkpoint(util::BinaryReader& in) {
  windows_done_ = in.read_u64();
  if (windows_done_ > config_.lambdas.size()) {
    throw IoError("FEP checkpoint window count out of range");
  }
  seed_positions_ = in.read_pod_vector<Vec3>();
  uint64_t n = in.read_u64();
  if (n != windows_done_) {
    throw IoError("FEP checkpoint sample list inconsistent");
  }
  sampled_.clear();
  sampled_.reserve(n);
  for (uint64_t k = 0; k < n; ++k) {
    FepWindowSamples w;
    w.lambda = in.read_f64();
    w.du_to_next = in.read_pod_vector<double>();
    w.du_to_prev = in.read_pod_vector<double>();
    sampled_.push_back(std::move(w));
  }
}

}  // namespace antmd::sampling
