// Umbrella sampling along a pair-distance reaction coordinate: one window
// per harmonic-restraint center; the samples feed analysis::wham.
#pragma once

#include <functional>
#include <vector>

#include "analysis/free_energy.hpp"
#include "ff/forcefield.hpp"
#include "md/simulation.hpp"
#include "topo/builders.hpp"

namespace antmd::sampling {

struct UmbrellaConfig {
  std::vector<double> centers;  ///< window centers (Å)
  double k = 10.0;              ///< restraint constant (U = k Δ²)
  size_t equil_steps = 200;
  size_t prod_steps = 1000;
  int sample_interval = 5;
  md::SimulationConfig md;
};

/// Runs all windows sequentially (each from the previous window's final
/// configuration) and returns per-window CV samples.  `customize` (may be
/// null) is applied to each freshly built ForceField before the restraint
/// is added — e.g. to install a custom dimer pair table.
[[nodiscard]] std::vector<analysis::UmbrellaWindow> run_umbrella(
    const SystemSpec& spec, const ff::NonbondedModel& model, uint32_t atom_i,
    uint32_t atom_j, const UmbrellaConfig& config,
    const std::function<void(ForceField&)>& customize = nullptr);

}  // namespace antmd::sampling
