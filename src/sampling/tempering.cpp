#include "sampling/tempering.hpp"

#include <algorithm>
#include <cmath>

#include "math/units.hpp"
#include "md/serialize.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace antmd::sampling {

SimulatedTempering::SimulatedTempering(md::Simulation& sim,
                                       TemperingConfig config)
    : sim_(&sim),
      config_(std::move(config)),
      rng_(config_.seed),
      weights_(config_.ladder.size(), 0.0),
      occupancy_(config_.ladder.size(), 0),
      wl_delta_(config_.wl_increment) {
  ANTMD_REQUIRE(config_.ladder.size() >= 2, "ladder needs >= 2 levels");
  ANTMD_REQUIRE(std::is_sorted(config_.ladder.begin(), config_.ladder.end()),
                "ladder must be ascending");
  ANTMD_REQUIRE(config_.attempt_interval >= 1, "attempt interval must be >=1");
  ANTMD_REQUIRE(sim_->thermostat().kind() != md::ThermostatKind::kNone,
                "simulated tempering needs a thermostat");
  sim_->thermostat().set_temperature(config_.ladder[0]);
  // Registered last so a throwing constructor never leaves a dangling
  // callback on the simulation.
  sim_->add_observer([this](const md::StepInfo&) { attempt_move(); },
                     config_.attempt_interval);
}

void SimulatedTempering::run(size_t steps) { sim_->run(steps); }

void SimulatedTempering::attempt_move() {
  static auto& attempt_count =
      obs::MetricsRegistry::global().counter("sampling.tempering.attempt.count");
  static auto& accept_count =
      obs::MetricsRegistry::global().counter("sampling.tempering.accept.count");
  attempt_count.add();
  ++attempts_;
  ++occupancy_[level_];

  // Wang–Landau adaptation on the visited level.
  if (wl_delta_ > config_.wl_floor) {
    weights_[level_] -= wl_delta_;
    if (*std::min_element(occupancy_.begin(), occupancy_.end()) > 0 &&
        attempts_ % (10 * occupancy_.size()) == 0) {
      wl_delta_ *= 0.5;
    }
  }

  // Propose a neighbouring level.
  size_t proposal;
  if (level_ == 0) {
    proposal = 1;
  } else if (level_ + 1 == config_.ladder.size()) {
    proposal = level_ - 1;
  } else {
    proposal = rng_.uniform() < 0.5 ? level_ - 1 : level_ + 1;
  }

  const double u = sim_->potential_energy();
  const double beta_cur =
      1.0 / (units::kBoltzmann * config_.ladder[level_]);
  const double beta_new =
      1.0 / (units::kBoltzmann * config_.ladder[proposal]);
  // Acceptance for simulated tempering with log-weights w:
  //   min(1, exp(-(β' - β) U + w' - w))
  double log_acc =
      -(beta_new - beta_cur) * u + weights_[proposal] - weights_[level_];
  if (log_acc >= 0.0 || rng_.uniform() < std::exp(log_acc)) {
    double t_old = config_.ladder[level_];
    double t_new = config_.ladder[proposal];
    level_ = proposal;
    sim_->thermostat().set_temperature(t_new);
    sim_->rescale_velocities(std::sqrt(t_new / t_old));
    ++accepts_;
    accept_count.add();
  }
}

void SimulatedTempering::save_checkpoint(util::BinaryWriter& out) const {
  out.write_u64(level_);
  out.write_pod_vector(weights_);
  out.write_pod_vector(occupancy_);
  out.write_f64(wl_delta_);
  out.write_u64(attempts_);
  out.write_u64(accepts_);
  md::write_rng(out, rng_);
}

void SimulatedTempering::restore_checkpoint(util::BinaryReader& in) {
  level_ = in.read_u64();
  if (level_ >= config_.ladder.size()) {
    throw IoError("tempering checkpoint level out of range");
  }
  weights_ = in.read_pod_vector<double>();
  occupancy_ = in.read_pod_vector<uint64_t>();
  if (weights_.size() != config_.ladder.size() ||
      occupancy_.size() != config_.ladder.size()) {
    throw IoError("tempering checkpoint ladder size mismatch");
  }
  wl_delta_ = in.read_f64();
  attempts_ = in.read_u64();
  accepts_ = in.read_u64();
  md::read_rng(in, rng_);
  // Keep the bath consistent with the restored ladder position (the
  // simulation's own checkpoint also restores this; setting it here makes
  // the driver self-contained).
  sim_->thermostat().set_temperature(config_.ladder[level_]);
}

}  // namespace antmd::sampling
