// Simulated tempering: a single trajectory performs a random walk in a
// temperature ladder, escaping kinetic traps at high T and collecting
// canonical statistics at the target T.  One of the methods the generality
// extensions brought to the machine — the exchange decision is a few
// scalar operations on a geometry core between force steps.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.hpp"
#include "md/simulation.hpp"

namespace antmd::sampling {

struct TemperingConfig {
  std::vector<double> ladder;   ///< temperatures (K), ascending
  int attempt_interval = 100;   ///< MD steps between level-change attempts
  uint64_t seed = 99;
  /// Wang–Landau-style weight adaptation: subtract `wl_increment` (in kT
  /// units of the bottom rung) from the visited level's weight after each
  /// attempt, halving the increment each time all levels were visited.
  double wl_increment = 1.0;
  double wl_floor = 1e-4;       ///< stop adapting below this increment
};

/// Summary snapshot for the unified sampling-driver interface.
struct TemperingResult {
  uint64_t attempts = 0;
  uint64_t accepts = 0;
  size_t final_level = 0;
  double final_temperature_k = 0.0;
  std::vector<uint64_t> occupancy;
  std::vector<double> weights;
};

class SimulatedTempering : public util::Checkpointable {
 public:
  /// Registers a step observer on `sim` that makes the level-change
  /// decision every attempt_interval steps; this object must therefore
  /// outlive any stepping of `sim` after construction.
  SimulatedTempering(md::Simulation& sim, TemperingConfig config);

  /// Runs `steps` MD steps; tempering moves fire from the step observer.
  void run(size_t steps);

  /// Unified driver accessor (matches the other sampling methods).
  [[nodiscard]] TemperingResult result() const {
    return TemperingResult{attempts_,     accepts_, level_,
                           config_.ladder[level_], occupancy_, weights_};
  }

  [[nodiscard]] size_t current_level() const { return level_; }
  [[nodiscard]] double current_temperature() const {
    return config_.ladder[level_];
  }
  [[nodiscard]] uint64_t attempts() const { return attempts_; }
  [[nodiscard]] uint64_t accepts() const { return accepts_; }
  /// Visits per ladder level (diagnostic: flat ⇒ weights converged).
  [[nodiscard]] const std::vector<uint64_t>& occupancy() const {
    return occupancy_;
  }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

  /// Checkpoint: ladder position, adaptive weights/occupancy, Wang–Landau
  /// increment, attempt counters and the RNG stream position.  Restore also
  /// retargets the simulation's thermostat to the restored level.
  void save_checkpoint(util::BinaryWriter& out) const override;
  void restore_checkpoint(util::BinaryReader& in) override;

 private:
  void attempt_move();

  md::Simulation* sim_;
  TemperingConfig config_;
  SequentialRng rng_;
  size_t level_ = 0;
  std::vector<double> weights_;     ///< dimensionless log-weights
  std::vector<uint64_t> occupancy_;
  double wl_delta_;
  uint64_t attempts_ = 0;
  uint64_t accepts_ = 0;
};

}  // namespace antmd::sampling
