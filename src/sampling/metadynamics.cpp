#include "sampling/metadynamics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace antmd::sampling {

Metadynamics::Metadynamics(md::Simulation& sim, uint32_t i, uint32_t j,
                           MetadynamicsConfig config)
    : sim_(&sim), i_(i), j_(j), config_(config) {
  ANTMD_REQUIRE(config_.bias_factor > 1.0, "bias factor must exceed 1");
  ANTMD_REQUIRE(config_.sigma > 0 && config_.initial_height > 0,
                "bad hill parameters");
  ff::PairBias bias;
  bias.i = i;
  bias.j = j;
  // The closure reads this object's hill list; deposits between MD steps
  // mutate it (never concurrently with force evaluation).
  bias.potential = [this](double r) -> std::pair<double, double> {
    double u = 0.0, dudr = 0.0;
    const double inv2s2 = 1.0 / (2.0 * config_.sigma * config_.sigma);
    for (size_t h = 0; h < centers_.size(); ++h) {
      double d = r - centers_[h];
      double g = heights_[h] * std::exp(-d * d * inv2s2);
      u += g;
      dudr += -d * 2.0 * inv2s2 * g;
    }
    return {u, dudr};
  };
  sim_->force_field().add_pair_bias(std::move(bias));
}

double Metadynamics::current_cv() const {
  const State& s = sim_->state();
  return norm(s.box.min_image(s.positions[i_], s.positions[j_]));
}

void Metadynamics::run(size_t steps) {
  for (size_t s = 0; s < steps; ++s) {
    sim_->step();
    if (sim_->state().step %
            static_cast<uint64_t>(config_.deposit_interval) ==
        0) {
      deposit();
    }
  }
}

void Metadynamics::deposit() {
  double cv = current_cv();
  if (cv < config_.cv_min || cv > config_.cv_max) return;
  // Well-tempered height decay: h = h0 exp(-V(cv) / ((γ-1) kT_eff)); we use
  // the simulation's thermostat temperature.
  double kt = 0.001987204259 * sim_->thermostat().temperature_k();
  double v = bias(cv);
  double h = config_.initial_height *
             std::exp(-v / ((config_.bias_factor - 1.0) * kt));
  centers_.push_back(cv);
  heights_.push_back(h);
  static auto& hill_count =
      obs::MetricsRegistry::global().counter("sampling.metadynamics.hill.count");
  hill_count.add();
}

double Metadynamics::bias(double r) const {
  double u = 0.0;
  const double inv2s2 = 1.0 / (2.0 * config_.sigma * config_.sigma);
  for (size_t h = 0; h < centers_.size(); ++h) {
    double d = r - centers_[h];
    u += heights_[h] * std::exp(-d * d * inv2s2);
  }
  return u;
}

std::vector<std::pair<double, double>> Metadynamics::free_energy(
    size_t bins) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(bins);
  const double gamma = config_.bias_factor;
  const double scale = -gamma / (gamma - 1.0);
  double fmin = 1e300;
  for (size_t b = 0; b < bins; ++b) {
    double xi = config_.cv_min + (config_.cv_max - config_.cv_min) *
                                     (static_cast<double>(b) + 0.5) /
                                     static_cast<double>(bins);
    double f = scale * bias(xi);
    out.emplace_back(xi, f);
    fmin = std::min(fmin, f);
  }
  for (auto& [xi, f] : out) f -= fmin;
  return out;
}

void Metadynamics::save_checkpoint(util::BinaryWriter& out) const {
  out.write_pod_vector(centers_);
  out.write_pod_vector(heights_);
}

void Metadynamics::restore_checkpoint(util::BinaryReader& in) {
  centers_ = in.read_pod_vector<double>();
  heights_ = in.read_pod_vector<double>();
  if (centers_.size() != heights_.size()) {
    throw IoError("metadynamics checkpoint hill lists inconsistent");
  }
}

}  // namespace antmd::sampling
