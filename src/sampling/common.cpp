#include "sampling/common.hpp"

#include "md/neighbor.hpp"

namespace antmd::sampling {

double potential_energy(const ForceField& ff,
                        std::span<const Vec3> positions, const Box& box,
                        double time) {
  const Topology& topo = ff.topology();
  std::vector<Vec3> pos(positions.begin(), positions.end());
  ff::construct_virtual_sites(topo.virtual_sites(), pos, box);

  md::NeighborList list(topo, ff.model().cutoff, 0.0);
  list.build(pos, box);

  ForceResult res(topo.atom_count());
  ff.compute_bonded(pos, box, time, res);
  ff.compute_nonbonded(list.pairs(), pos, box, res);
  if (ff.has_kspace()) {
    GseSolver solver(box, ff.gse()->params());
    if (ff.charge_product_scale() == 1.0) {
      solver.compute(pos, topo.charges(), ff.excluded_pairs(), box, res);
    } else {
      std::vector<double> scaled(topo.charges());
      double f = std::sqrt(ff.charge_product_scale());
      for (double& q : scaled) q *= f;
      solver.compute(pos, scaled, ff.excluded_pairs(), box, res);
    }
  }
  return res.energy.total();
}

}  // namespace antmd::sampling
