// Shared helpers for the sampling methods.
#pragma once

#include <span>

#include "ff/forcefield.hpp"
#include "math/pbc.hpp"

namespace antmd::sampling {

/// Full potential energy of `positions` under `ff` (fresh neighbor list,
/// virtual sites constructed, k-space included when configured).  Used for
/// cross-Hamiltonian evaluations in H-REMD and FEP.
[[nodiscard]] double potential_energy(const ForceField& ff,
                                      std::span<const Vec3> positions,
                                      const Box& box, double time = 0.0);

}  // namespace antmd::sampling
