// Temperature-accelerated MD (TAMD) on a pair-distance collective variable.
//
// An auxiliary variable z is tethered to the CV by a stiff spring and
// evolved by overdamped Langevin dynamics at an elevated temperature,
// dragging the physical system over barriers while the atomistic bath stays
// at the physical temperature (Maragliano & Vanden-Eijnden; used on Anton
// in, e.g., Pan et al.'s enhanced-sampling studies).
#pragma once

#include <cstdint>

#include "math/rng.hpp"
#include "md/simulation.hpp"

namespace antmd::sampling {

/// Snapshot of the auxiliary-variable state (unified driver interface).
struct TamdResult {
  double z = 0.0;
  double cv = 0.0;
  double force_on_z = 0.0;
};

struct TamdConfig {
  double spring_k = 50.0;        ///< kcal/mol/Å² (U = k (r - z)²)
  double z_temperature_k = 1200; ///< auxiliary-variable temperature
  double z_friction = 20.0;      ///< γ for z (internal-time units⁻¹)
  double z_min = 1.0;            ///< reflecting bounds for z
  double z_max = 12.0;
  uint64_t seed = 31;
};

class Tamd {
 public:
  Tamd(md::Simulation& sim, uint32_t i, uint32_t j, TamdConfig config);

  void run(size_t steps);

  /// Unified driver accessor (matches the other sampling methods).
  [[nodiscard]] TamdResult result() const {
    return TamdResult{z_, current_cv(), instantaneous_force_on_z()};
  }

  [[nodiscard]] double z() const { return z_; }
  [[nodiscard]] double current_cv() const;
  /// Mean spring force on z at a given z can be accumulated externally to
  /// estimate dF/dz; this returns the instantaneous spring force on z.
  [[nodiscard]] double instantaneous_force_on_z() const;

 private:
  md::Simulation* sim_;
  uint32_t i_, j_;
  TamdConfig config_;
  CounterRng rng_;
  double z_ = 0.0;
  uint64_t z_steps_ = 0;
};

}  // namespace antmd::sampling
