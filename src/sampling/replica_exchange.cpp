#include "sampling/replica_exchange.hpp"

#include <algorithm>
#include <cmath>

#include "math/units.hpp"
#include "md/serialize.hpp"
#include "obs/metrics.hpp"
#include "sampling/common.hpp"
#include "util/error.hpp"

namespace antmd::sampling {
namespace {

struct ExchangeMetrics {
  obs::Counter& attempts;
  obs::Counter& accepts;
};

ExchangeMetrics& exchange_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static ExchangeMetrics m{reg.counter("sampling.exchange.attempt.count"),
                           reg.counter("sampling.exchange.accept.count")};
  return m;
}

/// Swaps configurations between two simulations, rescaling velocities for
/// the temperature ratio (t_to / t_from per receiving replica).
void swap_configurations(md::Simulation& a, md::Simulation& b,
                         double temp_a, double temp_b) {
  State& sa = a.mutable_state();
  State& sb = b.mutable_state();
  std::swap(sa.positions, sb.positions);
  std::swap(sa.velocities, sb.velocities);
  // Velocities arriving at a new temperature are rescaled (standard REMD).
  if (temp_a != temp_b) {
    double f_a = std::sqrt(temp_a / temp_b);  // config from b arrives at a
    for (auto& v : sa.velocities) v *= f_a;
    double f_b = std::sqrt(temp_b / temp_a);
    for (auto& v : sb.velocities) v *= f_b;
  }
  a.invalidate_forces();
  b.invalidate_forces();
}

}  // namespace

TemperatureReplicaExchange::TemperatureReplicaExchange(
    std::vector<md::Simulation*> replicas, std::vector<double> temperatures,
    int attempt_interval, uint64_t seed, ExecutionConfig execution)
    : replicas_(std::move(replicas)),
      temperatures_(std::move(temperatures)),
      attempt_interval_(attempt_interval),
      rng_(seed),
      exec_(ExecutionContext::create(execution)),
      replica_graph_(exec_->runtime(), "sampling.remd") {
  ANTMD_REQUIRE(replicas_.size() >= 2, "need >= 2 replicas");
  ANTMD_REQUIRE(replicas_.size() == temperatures_.size(),
                "replica/temperature count mismatch");
  ANTMD_REQUIRE(std::is_sorted(temperatures_.begin(), temperatures_.end()),
                "temperatures must ascend");
  slot_to_replica_.resize(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) slot_to_replica_[i] = i;
  stats_.attempts.assign(replicas_.size() - 1, 0);
  stats_.accepts.assign(replicas_.size() - 1, 0);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->thermostat().set_temperature(temperatures_[i]);
  }
  // Replicas are independent between exchanges (separate ForceFields,
  // counter-based RNGs), so the chunks may run concurrently.
  replica_graph_.add_parallel(
      "sampling.replica_chunk", [this] { return replicas_.size(); },
      [this](size_t r) { replicas_[r]->run(chunk_); });
}

void TemperatureReplicaExchange::run(size_t steps) {
  size_t done = 0;
  while (done < steps) {
    chunk_ = std::min<size_t>(attempt_interval_, steps - done);
    replica_graph_.run();
    size_t chunk = chunk_;
    done += chunk;
    if (chunk == static_cast<size_t>(attempt_interval_)) {
      attempt_exchanges(rounds_ % 2 == 0);
      ++rounds_;
    }
  }
}

void TemperatureReplicaExchange::attempt_exchanges(bool even_pairs) {
  for (size_t k = even_pairs ? 0 : 1; k + 1 < replicas_.size(); k += 2) {
    ++stats_.attempts[k];
    exchange_metrics().attempts.add();
    double beta_lo = 1.0 / (units::kBoltzmann * temperatures_[k]);
    double beta_hi = 1.0 / (units::kBoltzmann * temperatures_[k + 1]);
    double u_lo = replicas_[k]->potential_energy();
    double u_hi = replicas_[k + 1]->potential_energy();
    double log_acc = (beta_lo - beta_hi) * (u_lo - u_hi);
    if (log_acc >= 0.0 || rng_.uniform() < std::exp(log_acc)) {
      swap_configurations(*replicas_[k], *replicas_[k + 1],
                          temperatures_[k], temperatures_[k + 1]);
      std::swap(slot_to_replica_[k], slot_to_replica_[k + 1]);
      ++stats_.accepts[k];
      exchange_metrics().accepts.add();
    }
  }
}

void TemperatureReplicaExchange::save_checkpoint(
    util::BinaryWriter& out) const {
  out.write_pod_vector(stats_.attempts);
  out.write_pod_vector(stats_.accepts);
  out.write_pod_vector(slot_to_replica_);
  out.write_u64(rounds_);
  md::write_rng(out, rng_);
}

void TemperatureReplicaExchange::restore_checkpoint(util::BinaryReader& in) {
  stats_.attempts = in.read_pod_vector<uint64_t>();
  stats_.accepts = in.read_pod_vector<uint64_t>();
  slot_to_replica_ = in.read_pod_vector<size_t>();
  if (stats_.attempts.size() != replicas_.size() - 1 ||
      stats_.accepts.size() != replicas_.size() - 1 ||
      slot_to_replica_.size() != replicas_.size()) {
    throw IoError("replica-exchange checkpoint ladder size mismatch");
  }
  rounds_ = in.read_u64();
  md::read_rng(in, rng_);
}

HamiltonianReplicaExchange::HamiltonianReplicaExchange(
    std::vector<md::Simulation*> replicas, double temperature_k,
    int attempt_interval, uint64_t seed, ExecutionConfig execution)
    : replicas_(std::move(replicas)),
      temperature_k_(temperature_k),
      attempt_interval_(attempt_interval),
      rng_(seed),
      exec_(ExecutionContext::create(execution)),
      replica_graph_(exec_->runtime(), "sampling.hremd") {
  ANTMD_REQUIRE(replicas_.size() >= 2, "need >= 2 replicas");
  stats_.attempts.assign(replicas_.size() - 1, 0);
  stats_.accepts.assign(replicas_.size() - 1, 0);
  replica_graph_.add_parallel(
      "sampling.replica_chunk", [this] { return replicas_.size(); },
      [this](size_t r) { replicas_[r]->run(chunk_); });
}

void HamiltonianReplicaExchange::run(size_t steps) {
  size_t done = 0;
  while (done < steps) {
    chunk_ = std::min<size_t>(attempt_interval_, steps - done);
    replica_graph_.run();
    size_t chunk = chunk_;
    done += chunk;
    if (chunk == static_cast<size_t>(attempt_interval_)) {
      attempt_exchanges(rounds_ % 2 == 0);
      ++rounds_;
    }
  }
}

void HamiltonianReplicaExchange::attempt_exchanges(bool even_pairs) {
  const double beta = 1.0 / (units::kBoltzmann * temperature_k_);
  for (size_t k = even_pairs ? 0 : 1; k + 1 < replicas_.size(); k += 2) {
    ++stats_.attempts[k];
    exchange_metrics().attempts.add();
    md::Simulation& a = *replicas_[k];
    md::Simulation& b = *replicas_[k + 1];
    // Cross-Hamiltonian energies: U_a(x_b) and U_b(x_a).
    double u_aa = a.potential_energy();
    double u_bb = b.potential_energy();
    double u_ab = potential_energy(a.force_field(), b.state().positions,
                                   b.state().box);
    double u_ba = potential_energy(b.force_field(), a.state().positions,
                                   a.state().box);
    double log_acc = -beta * ((u_ab + u_ba) - (u_aa + u_bb));
    if (log_acc >= 0.0 || rng_.uniform() < std::exp(log_acc)) {
      swap_configurations(a, b, temperature_k_, temperature_k_);
      ++stats_.accepts[k];
      exchange_metrics().accepts.add();
    }
  }
}

}  // namespace antmd::sampling
