#include "sampling/umbrella.hpp"

#include <cmath>

#include "util/error.hpp"

namespace antmd::sampling {

std::vector<analysis::UmbrellaWindow> run_umbrella(
    const SystemSpec& spec, const ff::NonbondedModel& model, uint32_t atom_i,
    uint32_t atom_j, const UmbrellaConfig& config,
    const std::function<void(ForceField&)>& customize) {
  ANTMD_REQUIRE(!config.centers.empty(), "need at least one window");

  std::vector<analysis::UmbrellaWindow> windows;
  windows.reserve(config.centers.size());
  std::vector<Vec3> positions = spec.positions;

  for (double center : config.centers) {
    ForceField field(spec.topology, model);
    if (customize) customize(field);
    field.add_distance_restraint({atom_i, atom_j, config.k, center, 0.0});

    md::Simulation sim(field, positions, spec.box, config.md);
    sim.run(config.equil_steps);

    analysis::UmbrellaWindow window;
    window.center = center;
    window.k = config.k;
    for (size_t s = 0; s < config.prod_steps; ++s) {
      sim.step();
      if (sim.state().step %
              static_cast<uint64_t>(config.sample_interval) ==
          0) {
        const State& st = sim.state();
        window.samples.push_back(
            norm(st.box.min_image(st.positions[atom_i],
                                  st.positions[atom_j])));
      }
    }
    windows.push_back(std::move(window));
    positions = sim.state().positions;
  }
  return windows;
}

}  // namespace antmd::sampling
