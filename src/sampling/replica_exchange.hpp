// Replica exchange: several replicas run in parallel (on the real machine,
// on separate partitions or time-sliced), periodically attempting to swap
// configurations between neighbours.
//
// Temperature REMD swaps between replicas at different temperatures;
// Hamiltonian REMD swaps between replicas with scaled interactions
// (vdw/charge scale factors), which requires cross-Hamiltonian energy
// evaluations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "math/rng.hpp"
#include "md/simulation.hpp"
#include "util/execution.hpp"
#include "util/task_graph.hpp"

namespace antmd::sampling {

struct ExchangeStats {
  std::vector<uint64_t> attempts;  ///< per neighbour pair (i, i+1)
  std::vector<uint64_t> accepts;
  [[nodiscard]] double acceptance(size_t pair) const {
    return attempts[pair] ? static_cast<double>(accepts[pair]) /
                                static_cast<double>(attempts[pair])
                          : 0.0;
  }
};

class TemperatureReplicaExchange : public util::Checkpointable {
 public:
  /// Each replica must have a thermostat set to the matching temperature.
  /// With execution.threads > 1 the replicas advance their MD chunks
  /// concurrently (each replica must own its ForceField); exchange
  /// decisions stay serial, so results are identical at any thread count.
  TemperatureReplicaExchange(std::vector<md::Simulation*> replicas,
                             std::vector<double> temperatures,
                             int attempt_interval, uint64_t seed = 7,
                             ExecutionConfig execution = {});

  /// Advances every replica by `steps` MD steps with exchanges interleaved.
  void run(size_t steps);

  [[nodiscard]] const ExchangeStats& stats() const { return stats_; }
  /// Which original replica index currently holds ladder slot k (replica
  /// flow diagnostic).
  [[nodiscard]] const std::vector<size_t>& slot_to_replica() const {
    return slot_to_replica_;
  }

  /// Checkpoint: exchange statistics, the slot permutation, the round
  /// counter (even/odd pair alternation) and the swap RNG position.  The
  /// replicas themselves are separate Checkpointables and must be saved /
  /// restored alongside this driver.
  void save_checkpoint(util::BinaryWriter& out) const override;
  void restore_checkpoint(util::BinaryReader& in) override;

 private:
  void attempt_exchanges(bool even_pairs);

  std::vector<md::Simulation*> replicas_;  ///< indexed by ladder slot
  std::vector<double> temperatures_;
  std::vector<size_t> slot_to_replica_;
  int attempt_interval_;
  SequentialRng rng_;
  ExchangeStats stats_;
  uint64_t rounds_ = 0;
  std::shared_ptr<ExecutionContext> exec_;
  /// One parallel node over the replica set, reused across exchange
  /// rounds; chunk_ is the per-round step count its body reads.
  util::TaskGraph replica_graph_;
  size_t chunk_ = 0;
};

class HamiltonianReplicaExchange {
 public:
  /// Replica k runs with its force field's current vdw/charge scales; all
  /// replicas share one temperature.  See TemperatureReplicaExchange for
  /// the concurrency contract of `execution`.
  HamiltonianReplicaExchange(std::vector<md::Simulation*> replicas,
                             double temperature_k, int attempt_interval,
                             uint64_t seed = 7,
                             ExecutionConfig execution = {});

  void run(size_t steps);

  [[nodiscard]] const ExchangeStats& stats() const { return stats_; }

 private:
  void attempt_exchanges(bool even_pairs);

  std::vector<md::Simulation*> replicas_;
  double temperature_k_;
  int attempt_interval_;
  SequentialRng rng_;
  ExchangeStats stats_;
  uint64_t rounds_ = 0;
  std::shared_ptr<ExecutionContext> exec_;
  util::TaskGraph replica_graph_;  ///< see TemperatureReplicaExchange
  size_t chunk_ = 0;
};

}  // namespace antmd::sampling
