#include "sampling/tamd.hpp"

#include <algorithm>
#include <cmath>

#include "math/units.hpp"
#include "util/error.hpp"

namespace antmd::sampling {

Tamd::Tamd(md::Simulation& sim, uint32_t i, uint32_t j, TamdConfig config)
    : sim_(&sim), i_(i), j_(j), config_(config),
      rng_(config.seed, /*stream=*/0x7A3Dull) {
  ANTMD_REQUIRE(config_.spring_k > 0, "spring must be positive");
  ANTMD_REQUIRE(config_.z_max > config_.z_min, "bad z bounds");
  z_ = current_cv();
  z_ = std::clamp(z_, config_.z_min, config_.z_max);

  ff::PairBias bias;
  bias.i = i;
  bias.j = j;
  bias.potential = [this](double r) -> std::pair<double, double> {
    double d = r - z_;
    return {config_.spring_k * d * d, 2.0 * config_.spring_k * d};
  };
  sim_->force_field().add_pair_bias(std::move(bias));
}

double Tamd::current_cv() const {
  const State& s = sim_->state();
  return norm(s.box.min_image(s.positions[i_], s.positions[j_]));
}

double Tamd::instantaneous_force_on_z() const {
  return 2.0 * config_.spring_k * (current_cv() - z_);
}

void Tamd::run(size_t steps) {
  const double dt = sim_->dt_internal();
  const double kt_z = units::kBoltzmann * config_.z_temperature_k;
  const double mobility = 1.0 / config_.z_friction;  // overdamped: ż = μ F
  const double noise = std::sqrt(2.0 * kt_z * mobility * dt);

  for (size_t s = 0; s < steps; ++s) {
    sim_->step();
    // Overdamped Langevin update of z, using the decomposition-independent
    // counter RNG addressed by the MD step.
    double f = instantaneous_force_on_z();
    double xi = rng_.gaussian(z_steps_++, sim_->state().step);
    z_ += mobility * f * dt + noise * xi;
    // Reflecting walls.
    if (z_ < config_.z_min) z_ = 2.0 * config_.z_min - z_;
    if (z_ > config_.z_max) z_ = 2.0 * config_.z_max - z_;
    z_ = std::clamp(z_, config_.z_min, config_.z_max);
  }
}

}  // namespace antmd::sampling
