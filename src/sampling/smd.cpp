#include "sampling/smd.hpp"

#include "util/error.hpp"

namespace antmd::sampling {

SteeredPull::SteeredPull(md::Simulation& sim, size_t spring_index)
    : sim_(&sim) {
  const auto& springs = sim.force_field().steered_springs();
  ANTMD_REQUIRE(spring_index < springs.size(), "no such steered spring");
  spring_ = springs[spring_index];
}

double SteeredPull::current_distance() const {
  const State& s = sim_->state();
  return norm(s.box.min_image(s.positions[spring_.i],
                              s.positions[spring_.j]));
}

void SteeredPull::run(size_t steps, int record_interval) {
  const double dt = sim_->dt_internal();
  for (size_t s = 0; s < steps; ++s) {
    sim_->step();
    double t = sim_->state().time;
    double target = spring_.r_start + spring_.velocity * t;
    double dev = current_distance() - target;
    // dW = ∂U/∂t dt with U = k (r - target(t))²:
    result_.total_work += -2.0 * spring_.k * dev * spring_.velocity * dt;
    if (record_interval > 0 &&
        sim_->state().step % static_cast<uint64_t>(record_interval) == 0) {
      result_.times.push_back(t);
      result_.targets.push_back(target);
      result_.distances.push_back(current_distance());
      result_.work_trace.push_back(result_.total_work);
    }
  }
}

}  // namespace antmd::sampling
