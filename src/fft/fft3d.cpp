#include "fft/fft3d.hpp"

#include <cmath>

#include "util/error.hpp"

namespace antmd {

Grid3D::Grid3D(size_t nx, size_t ny, size_t nz)
    : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz) {
  ANTMD_REQUIRE(is_pow2(nx) && is_pow2(ny) && is_pow2(nz),
                "grid dimensions must be powers of two");
}

void Grid3D::fill(Complex value) {
  std::fill(data_.begin(), data_.end(), value);
}

namespace {

enum class Direction { kForward, kInverse };

void transform_axis_x(Grid3D& g, Direction dir) {
  std::vector<Complex> line(g.nx());
  for (size_t z = 0; z < g.nz(); ++z) {
    for (size_t y = 0; y < g.ny(); ++y) {
      for (size_t x = 0; x < g.nx(); ++x) line[x] = g.at(x, y, z);
      if (dir == Direction::kForward) fft_forward(line);
      else fft_inverse(line);
      for (size_t x = 0; x < g.nx(); ++x) g.at(x, y, z) = line[x];
    }
  }
}

void transform_axis_y(Grid3D& g, Direction dir) {
  std::vector<Complex> line(g.ny());
  for (size_t z = 0; z < g.nz(); ++z) {
    for (size_t x = 0; x < g.nx(); ++x) {
      for (size_t y = 0; y < g.ny(); ++y) line[y] = g.at(x, y, z);
      if (dir == Direction::kForward) fft_forward(line);
      else fft_inverse(line);
      for (size_t y = 0; y < g.ny(); ++y) g.at(x, y, z) = line[y];
    }
  }
}

void transform_axis_z(Grid3D& g, Direction dir) {
  std::vector<Complex> line(g.nz());
  for (size_t y = 0; y < g.ny(); ++y) {
    for (size_t x = 0; x < g.nx(); ++x) {
      for (size_t z = 0; z < g.nz(); ++z) line[z] = g.at(x, y, z);
      if (dir == Direction::kForward) fft_forward(line);
      else fft_inverse(line);
      for (size_t z = 0; z < g.nz(); ++z) g.at(x, y, z) = line[z];
    }
  }
}

}  // namespace

void fft3d_forward(Grid3D& grid) {
  transform_axis_x(grid, Direction::kForward);
  transform_axis_y(grid, Direction::kForward);
  transform_axis_z(grid, Direction::kForward);
}

void fft3d_inverse(Grid3D& grid) {
  transform_axis_x(grid, Direction::kInverse);
  transform_axis_y(grid, Direction::kInverse);
  transform_axis_z(grid, Direction::kInverse);
}

FftCommEstimate estimate_fft_cost(size_t nx, size_t ny, size_t nz,
                                  size_t nodes) {
  ANTMD_REQUIRE(nodes > 0, "nodes must be positive");
  const double n = static_cast<double>(nx * ny * nz);
  FftCommEstimate est;
  // 5 N log2 N real operations is the standard complex-FFT work estimate.
  est.flops = 5.0 * n * std::log2(std::max(2.0, n));
  if (nodes > 1) {
    // Two transposes; each moves the whole grid once (16 B per complex).
    est.alltoall_bytes = 2.0 * n * 16.0;
    est.messages_per_node = 2 * (nodes - 1);
  }
  return est;
}

}  // namespace antmd
