// 3D FFT over a real scalar field on a regular grid, with an accounting of
// the communication pattern a slab-decomposed distributed transform incurs.
//
// The functional result is computed locally (this host is one core); the
// CommEstimate is consumed by the machine timing model, which is how the
// bench for experiment F5 attributes k-space time to compute vs transpose
// traffic.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "fft/fft.hpp"

namespace antmd {

/// Dense 3D complex grid with x fastest (index = x + nx*(y + ny*z)).
class Grid3D {
 public:
  Grid3D() = default;
  Grid3D(size_t nx, size_t ny, size_t nz);

  [[nodiscard]] size_t nx() const { return nx_; }
  [[nodiscard]] size_t ny() const { return ny_; }
  [[nodiscard]] size_t nz() const { return nz_; }
  [[nodiscard]] size_t size() const { return data_.size(); }

  [[nodiscard]] Complex& at(size_t x, size_t y, size_t z) {
    return data_[x + nx_ * (y + ny_ * z)];
  }
  [[nodiscard]] const Complex& at(size_t x, size_t y, size_t z) const {
    return data_[x + nx_ * (y + ny_ * z)];
  }

  [[nodiscard]] std::vector<Complex>& raw() { return data_; }
  [[nodiscard]] const std::vector<Complex>& raw() const { return data_; }

  void fill(Complex value);

 private:
  size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<Complex> data_;
};

/// In-place 3D forward transform (dimension-by-dimension 1D FFTs).
void fft3d_forward(Grid3D& grid);
/// In-place 3D inverse transform (normalized).
void fft3d_inverse(Grid3D& grid);

/// Communication/compute volume of one distributed 3D FFT (forward or
/// inverse) on `nodes` ranks using two all-to-all transposes, in the style
/// of Anton's k-space pipeline.
struct FftCommEstimate {
  double flops = 0.0;            ///< total 5 N log2 N butterflies-equivalent
  double alltoall_bytes = 0.0;   ///< total bytes crossing the network
  size_t messages_per_node = 0;  ///< messages each node sends per transpose
};

[[nodiscard]] FftCommEstimate estimate_fft_cost(size_t nx, size_t ny,
                                                size_t nz, size_t nodes);

}  // namespace antmd
