#include "fft/distributed.hpp"

#include "util/error.hpp"

namespace antmd {

DistributedFft3d::DistributedFft3d(size_t nx, size_t ny, size_t nz,
                                   size_t ranks)
    : nx_(nx), ny_(ny), nz_(nz), ranks_(ranks) {
  ANTMD_REQUIRE(is_pow2(nx) && is_pow2(ny) && is_pow2(nz),
                "grid dimensions must be powers of two");
  ANTMD_REQUIRE(ranks >= 1, "need at least one rank");
  ANTMD_REQUIRE(nz % ranks == 0 && nx % ranks == 0,
                "ranks must divide nz (phase 1 slabs) and nx (phase 2)");
}

FftCommLog DistributedFft3d::transform(Grid3D& grid, Direction dir) const {
  ANTMD_REQUIRE(grid.nx() == nx_ && grid.ny() == ny_ && grid.nz() == nz_,
                "grid shape mismatch");
  FftCommLog log;
  auto line_fft = [&](std::vector<Complex>& line) {
    if (dir == Direction::kForward) fft_forward(line);
    else fft_inverse(line);
  };

  const size_t z_per_rank = nz_ / ranks_;
  const size_t x_per_rank = nx_ / ranks_;

  // --- phase 1: each rank transforms x and y lines inside its z-slab ------
  for (size_t rank = 0; rank < ranks_; ++rank) {
    const size_t z0 = rank * z_per_rank;
    std::vector<Complex> line;
    for (size_t z = z0; z < z0 + z_per_rank; ++z) {
      for (size_t y = 0; y < ny_; ++y) {
        line.resize(nx_);
        for (size_t x = 0; x < nx_; ++x) line[x] = grid.at(x, y, z);
        line_fft(line);
        for (size_t x = 0; x < nx_; ++x) grid.at(x, y, z) = line[x];
      }
      for (size_t x = 0; x < nx_; ++x) {
        line.resize(ny_);
        for (size_t y = 0; y < ny_; ++y) line[y] = grid.at(x, y, z);
        line_fft(line);
        for (size_t y = 0; y < ny_; ++y) grid.at(x, y, z) = line[y];
      }
    }
  }

  // --- transpose: z-slabs -> x-slabs (explicit message accounting) --------
  // Each (src, dst) rank pair exchanges the block
  // x ∈ dst's x range, z ∈ src's z range, all y.
  auto account_transpose = [&]() {
    for (size_t src = 0; src < ranks_; ++src) {
      for (size_t dst = 0; dst < ranks_; ++dst) {
        if (src == dst) continue;
        double block = static_cast<double>(x_per_rank) * ny_ * z_per_rank *
                       sizeof(Complex);
        log.bytes += block;
        log.messages += 1;
      }
    }
    log.transposes += 1;
  };
  account_transpose();

  // --- phase 2: each rank transforms z lines inside its x-slab -------------
  for (size_t rank = 0; rank < ranks_; ++rank) {
    const size_t x0 = rank * x_per_rank;
    std::vector<Complex> line(nz_);
    for (size_t x = x0; x < x0 + x_per_rank; ++x) {
      for (size_t y = 0; y < ny_; ++y) {
        for (size_t z = 0; z < nz_; ++z) line[z] = grid.at(x, y, z);
        line_fft(line);
        for (size_t z = 0; z < nz_; ++z) grid.at(x, y, z) = line[z];
      }
    }
  }

  // --- transpose back so callers see the canonical z-slab layout ----------
  account_transpose();
  return log;
}

FftCommLog DistributedFft3d::forward(Grid3D& grid) const {
  return transform(grid, Direction::kForward);
}

FftCommLog DistributedFft3d::inverse(Grid3D& grid) const {
  return transform(grid, Direction::kInverse);
}

}  // namespace antmd
