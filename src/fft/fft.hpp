// From-scratch complex FFT (iterative radix-2 Cooley–Tukey).
//
// The Gaussian-split-Ewald k-space solve runs on power-of-two grids, which is
// also what Anton's hardware FFT supported; we therefore only implement the
// power-of-two case and validate sizes at the API boundary.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace antmd {

using Complex = std::complex<double>;

/// In-place forward FFT; n must be a power of two.
void fft_forward(std::vector<Complex>& data);

/// In-place inverse FFT (includes the 1/n normalization).
void fft_inverse(std::vector<Complex>& data);

/// Returns true if n is a nonzero power of two.
[[nodiscard]] constexpr bool is_pow2(size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace antmd
