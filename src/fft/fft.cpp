#include "fft/fft.hpp"

#include <cmath>

#include "util/error.hpp"

namespace antmd {
namespace {

// Iterative radix-2 Cooley–Tukey with bit-reversal permutation.
void fft_core(std::vector<Complex>& a, bool inverse) {
  const size_t n = a.size();
  ANTMD_REQUIRE(is_pow2(n), "FFT size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = 2.0 * M_PI / static_cast<double>(len) *
                   (inverse ? 1.0 : -1.0);
    Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        Complex u = a[i + k];
        Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv_n;
  }
}

}  // namespace

void fft_forward(std::vector<Complex>& data) { fft_core(data, false); }
void fft_inverse(std::vector<Complex>& data) { fft_core(data, true); }

}  // namespace antmd
