// Functional simulation of a slab-decomposed distributed 3D FFT.
//
// Anton computes the GSE k-space transform across the whole machine; the
// timing model charges its two all-to-all transposes analytically
// (estimate_fft_cost).  This class is the *functional* counterpart: the
// grid is partitioned into z-slabs across `ranks`, x/y lines are
// transformed slab-locally, and the z transform happens after an explicit
// transpose whose per-rank message sizes are recorded.  The result is
// bitwise identical to the serial fft3d_forward/inverse (verified in
// fft_test), which is how the real machine keeps k-space deterministic
// regardless of how the FFT is spread over nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "fft/fft3d.hpp"

namespace antmd {

/// Communication record of one distributed transform.
struct FftCommLog {
  double bytes = 0.0;        ///< payload crossing rank boundaries
  size_t messages = 0;       ///< point-to-point messages
  size_t transposes = 0;     ///< all-to-all phases performed
};

class DistributedFft3d {
 public:
  /// ranks must divide nz and nx (slab decompositions in both phases).
  DistributedFft3d(size_t nx, size_t ny, size_t nz, size_t ranks);

  /// In-place forward/inverse transform with explicit transposes.
  FftCommLog forward(Grid3D& grid) const;
  FftCommLog inverse(Grid3D& grid) const;

  [[nodiscard]] size_t ranks() const { return ranks_; }

 private:
  enum class Direction { kForward, kInverse };
  FftCommLog transform(Grid3D& grid, Direction dir) const;

  size_t nx_, ny_, nz_, ranks_;
};

}  // namespace antmd
