// Minimal run-configuration file format: `key = value` lines, `#` comments,
// blank lines ignored.  Used by the antmd_run driver so a simulation can be
// described in a text file instead of code.
#pragma once

#include <map>
#include <string>

namespace antmd::io {

class RunConfig {
 public:
  /// Parses a config file; throws ConfigError on I/O or syntax errors.
  static RunConfig from_file(const std::string& path);
  /// Parses config text directly (testing convenience).
  static RunConfig from_string(const std::string& text);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults; typed getters throw ConfigError when the
  /// stored text does not parse.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Required variants: throw when the key is absent.
  [[nodiscard]] std::string require_string(const std::string& key) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace antmd::io
