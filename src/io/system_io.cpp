#include "io/system_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace antmd::io {
namespace {

constexpr const char* kMagic = "antmd-system v1";

void expect_token(std::istream& in, const std::string& expected) {
  std::string token;
  in >> token;
  ANTMD_REQUIRE(in.good() && token == expected,
                "system file: expected '" + expected + "', got '" + token +
                    "'");
}

size_t read_count(std::istream& in, const std::string& section) {
  expect_token(in, section);
  size_t n = 0;
  in >> n;
  ANTMD_REQUIRE(!in.fail(), "system file: bad count for " + section);
  return n;
}

}  // namespace

std::string system_to_string(const SystemSpec& spec) {
  const Topology& t = spec.topology;
  std::ostringstream os;
  os << std::setprecision(17);
  os << kMagic << '\n';
  os << "name " << (spec.name.empty() ? "unnamed" : spec.name) << '\n';
  os << "box " << spec.box.edges().x << ' ' << spec.box.edges().y << ' '
     << spec.box.edges().z << '\n';

  os << "types " << t.types().size() << '\n';
  for (const auto& ty : t.types()) {
    os << ty.name << ' ' << ty.sigma << ' ' << ty.epsilon << '\n';
  }
  os << "atoms " << t.atom_count() << '\n';
  for (size_t i = 0; i < t.atom_count(); ++i) {
    const Vec3& p = spec.positions[i];
    os << t.type_ids()[i] << ' ' << t.masses()[i] << ' ' << t.charges()[i]
       << ' ' << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  os << "bonds " << t.bonds().size() << '\n';
  for (const auto& b : t.bonds()) {
    os << b.i << ' ' << b.j << ' ' << b.k << ' ' << b.r0 << '\n';
  }
  os << "angles " << t.angles().size() << '\n';
  for (const auto& a : t.angles()) {
    os << a.i << ' ' << a.j << ' ' << a.k_atom << ' ' << a.k << ' '
       << a.theta0 << '\n';
  }
  os << "dihedrals " << t.dihedrals().size() << '\n';
  for (const auto& d : t.dihedrals()) {
    os << d.i << ' ' << d.j << ' ' << d.k_atom << ' ' << d.l << ' ' << d.k
       << ' ' << d.n << ' ' << d.phi0 << '\n';
  }
  os << "morse " << t.morse_bonds().size() << '\n';
  for (const auto& b : t.morse_bonds()) {
    os << b.i << ' ' << b.j << ' ' << b.depth << ' ' << b.a << ' ' << b.r0
       << '\n';
  }
  os << "ureybradley " << t.urey_bradleys().size() << '\n';
  for (const auto& u : t.urey_bradleys()) {
    os << u.i << ' ' << u.k << ' ' << u.kub << ' ' << u.s0 << '\n';
  }
  os << "impropers " << t.impropers().size() << '\n';
  for (const auto& d : t.impropers()) {
    os << d.i << ' ' << d.j << ' ' << d.k_atom << ' ' << d.l << ' ' << d.k
       << ' ' << d.phi0 << '\n';
  }
  os << "gocontacts " << t.go_contacts().size() << '\n';
  for (const auto& g : t.go_contacts()) {
    os << g.i << ' ' << g.j << ' ' << g.epsilon << ' ' << g.r_native << '\n';
  }
  os << "constraints " << t.constraints().size() << '\n';
  for (const auto& c : t.constraints()) {
    os << c.i << ' ' << c.j << ' ' << c.r0 << '\n';
  }
  os << "vsites " << t.virtual_sites().size() << '\n';
  for (const auto& v : t.virtual_sites()) {
    os << v.site << ' '
       << (v.kind == VirtualSite::Kind::kLinear2 ? "linear2" : "planar3")
       << ' ' << v.parents[0] << ' ' << v.parents[1] << ' ' << v.parents[2]
       << ' ' << v.a << ' ' << v.b << '\n';
  }
  os << "molecules " << t.molecules().size() << '\n';
  for (const auto& m : t.molecules()) {
    os << m.first << ' ' << m.count << ' '
       << (m.name.empty() ? "MOL" : m.name) << '\n';
  }
  os << "tagged " << spec.tagged.size() << '\n';
  for (uint32_t a : spec.tagged) os << a << '\n';
  os << "reference " << spec.reference.size() << '\n';
  for (const Vec3& p : spec.reference) {
    os << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  return os.str();
}

SystemSpec system_from_string(const std::string& text) {
  std::istringstream in(text);
  std::string magic_a, magic_b;
  in >> magic_a >> magic_b;
  ANTMD_REQUIRE(magic_a + " " + magic_b == kMagic,
                "not an antmd system file");

  SystemSpec spec;
  expect_token(in, "name");
  in >> spec.name;
  expect_token(in, "box");
  double lx, ly, lz;
  in >> lx >> ly >> lz;
  ANTMD_REQUIRE(!in.fail(), "system file: bad box");
  spec.box = Box(lx, ly, lz);

  Topology& t = spec.topology;
  size_t n_types = read_count(in, "types");
  for (size_t k = 0; k < n_types; ++k) {
    std::string name;
    double sigma, epsilon;
    in >> name >> sigma >> epsilon;
    ANTMD_REQUIRE(!in.fail(), "system file: bad type record");
    t.add_type(name, sigma, epsilon);
  }
  size_t n_atoms = read_count(in, "atoms");
  spec.positions.reserve(n_atoms);
  for (size_t k = 0; k < n_atoms; ++k) {
    uint32_t type;
    double mass, charge, x, y, z;
    in >> type >> mass >> charge >> x >> y >> z;
    ANTMD_REQUIRE(!in.fail(), "system file: bad atom record");
    t.add_atom(type, mass, charge);
    spec.positions.push_back({x, y, z});
  }
  size_t n = read_count(in, "bonds");
  for (size_t k = 0; k < n; ++k) {
    uint32_t i, j;
    double kk, r0;
    in >> i >> j >> kk >> r0;
    t.add_bond(i, j, kk, r0);
  }
  n = read_count(in, "angles");
  for (size_t k = 0; k < n; ++k) {
    uint32_t i, j, a3;
    double kk, theta0;
    in >> i >> j >> a3 >> kk >> theta0;
    t.add_angle(i, j, a3, kk, theta0);
  }
  n = read_count(in, "dihedrals");
  for (size_t k = 0; k < n; ++k) {
    uint32_t i, j, a3, l;
    double kk, phi0;
    int mult;
    in >> i >> j >> a3 >> l >> kk >> mult >> phi0;
    t.add_dihedral(i, j, a3, l, kk, mult, phi0);
  }
  n = read_count(in, "morse");
  for (size_t k = 0; k < n; ++k) {
    uint32_t i, j;
    double depth, a, r0;
    in >> i >> j >> depth >> a >> r0;
    t.add_morse_bond(i, j, depth, a, r0);
  }
  n = read_count(in, "ureybradley");
  for (size_t k = 0; k < n; ++k) {
    uint32_t i, j;
    double kub, s0;
    in >> i >> j >> kub >> s0;
    t.add_urey_bradley(i, j, kub, s0);
  }
  n = read_count(in, "impropers");
  for (size_t k = 0; k < n; ++k) {
    uint32_t i, j, a3, l;
    double kk, phi0;
    in >> i >> j >> a3 >> l >> kk >> phi0;
    t.add_improper(i, j, a3, l, kk, phi0);
  }
  n = read_count(in, "gocontacts");
  for (size_t k = 0; k < n; ++k) {
    uint32_t i, j;
    double eps, rn;
    in >> i >> j >> eps >> rn;
    t.add_go_contact(i, j, eps, rn);
  }
  n = read_count(in, "constraints");
  for (size_t k = 0; k < n; ++k) {
    uint32_t i, j;
    double r0;
    in >> i >> j >> r0;
    t.add_constraint(i, j, r0);
  }
  n = read_count(in, "vsites");
  for (size_t k = 0; k < n; ++k) {
    VirtualSite v;
    std::string kind;
    in >> v.site >> kind >> v.parents[0] >> v.parents[1] >> v.parents[2] >>
        v.a >> v.b;
    ANTMD_REQUIRE(kind == "linear2" || kind == "planar3",
                  "system file: unknown vsite kind " + kind);
    v.kind = kind == "linear2" ? VirtualSite::Kind::kLinear2
                               : VirtualSite::Kind::kPlanar3;
    t.add_virtual_site(v);
  }
  n = read_count(in, "molecules");
  for (size_t k = 0; k < n; ++k) {
    uint32_t first, count;
    std::string name;
    in >> first >> count >> name;
    t.add_molecule(first, count, name);
  }
  n = read_count(in, "tagged");
  for (size_t k = 0; k < n; ++k) {
    uint32_t a;
    in >> a;
    spec.tagged.push_back(a);
  }
  n = read_count(in, "reference");
  for (size_t k = 0; k < n; ++k) {
    double x, y, z;
    in >> x >> y >> z;
    spec.reference.push_back({x, y, z});
  }
  ANTMD_REQUIRE(!in.fail(), "system file: truncated");

  t.build_exclusions_from_bonds();
  t.validate();
  return spec;
}

void save_system(const SystemSpec& spec, const std::string& path) {
  std::ofstream out(path);
  ANTMD_REQUIRE(out.good(), "cannot open system file: " + path);
  out << system_to_string(spec);
  ANTMD_REQUIRE(out.good(), "system file write failed: " + path);
}

SystemSpec load_system(const std::string& path) {
  std::ifstream in(path);
  ANTMD_REQUIRE(in.good(), "cannot open system file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return system_from_string(os.str());
}

}  // namespace antmd::io
