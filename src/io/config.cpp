#include "io/config.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace antmd::io {
namespace {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

RunConfig RunConfig::from_file(const std::string& path) {
  std::ifstream in(path);
  ANTMD_REQUIRE(in.good(), "cannot open config file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return from_string(os.str());
}

RunConfig RunConfig::from_string(const std::string& text) {
  RunConfig cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    ANTMD_REQUIRE(eq != std::string::npos,
                  "config line " + std::to_string(lineno) +
                      " is not 'key = value': " + line);
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    ANTMD_REQUIRE(!key.empty(), "empty key on config line " +
                                    std::to_string(lineno));
    ANTMD_REQUIRE(!cfg.entries_.count(key),
                  "duplicate config key: " + key);
    cfg.entries_[key] = value;
  }
  return cfg;
}

bool RunConfig::has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::string RunConfig::get_string(const std::string& key,
                                  const std::string& fallback) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

double RunConfig::get_double(const std::string& key, double fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  try {
    size_t pos = 0;
    double v = std::stod(it->second, &pos);
    ANTMD_REQUIRE(pos == it->second.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' expects a number, got '" +
                      it->second + "'");
  }
}

int RunConfig::get_int(const std::string& key, int fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  try {
    size_t pos = 0;
    int v = std::stoi(it->second, &pos);
    ANTMD_REQUIRE(pos == it->second.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' expects an integer, got '" +
                      it->second + "'");
  }
}

bool RunConfig::get_bool(const std::string& key, bool fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "yes" || v == "1") return true;
  if (v == "false" || v == "no" || v == "0") return false;
  throw ConfigError("config key '" + key + "' expects a boolean, got '" + v +
                    "'");
}

std::string RunConfig::require_string(const std::string& key) const {
  auto it = entries_.find(key);
  ANTMD_REQUIRE(it != entries_.end(), "missing required config key: " + key);
  return it->second;
}

}  // namespace antmd::io
