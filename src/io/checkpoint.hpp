// Crash-safe v2 checkpoint container.
//
// Layout (all little-endian):
//
//   u64  magic   "ANTMDCP2" (0x414E544D44435032)
//   u32  version (currently 2)
//   u32  section count
//   per section:
//     u64 name length, name bytes
//     u64 payload length, payload bytes
//   u32  CRC-32 over everything above
//
// Writes are atomic: the blob is written to `<path>.tmp` and renamed into
// place only after the stream flushed cleanly, so a crash mid-write leaves
// the previous checkpoint intact.  Loads verify magic, version and CRC and
// throw IoError on missing, truncated, foreign, or corrupt files — a torn
// or bit-flipped checkpoint is rejected, never silently restored.
//
// Sections are independent named payloads, each produced by one
// Checkpointable (the simulation, plus any sampling drivers layered on
// it), so a REMD ladder saves N replica sections + one driver section in a
// single atomic file.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/serialize.hpp"

namespace antmd::io {

inline constexpr uint64_t kCheckpointMagicV2 = 0x414E544D44435032ull;
inline constexpr uint32_t kCheckpointVersion = 2;

/// Named parts of a checkpoint file.
using CheckpointParts =
    std::vector<std::pair<std::string, const util::Checkpointable*>>;
using MutableCheckpointParts =
    std::vector<std::pair<std::string, util::Checkpointable*>>;

/// Serializes every part into its named section and writes the container
/// atomically.  Throws IoError on any I/O failure (the target path keeps
/// its previous contents).
void save_checkpoint_v2(const std::string& path,
                        const CheckpointParts& parts);

/// Restores every named part from the container.  Throws IoError when the
/// file is missing/truncated/corrupt or a requested section is absent;
/// sections not named in `parts` are ignored (forward compatibility).
void load_checkpoint_v2(const std::string& path,
                        const MutableCheckpointParts& parts);

/// Path of the rotated backup mirror kept next to a checkpoint.
[[nodiscard]] std::string backup_path(const std::string& path);

/// Keeps the previous generation alive: if `path` exists *and its CRC
/// verifies*, it is promoted to backup_path(path) via temp file + atomic
/// rename (replacing any older backup).  A torn or corrupt primary is
/// deleted instead, so it can never shadow a good `.bak`.  Callers rotate
/// before each atomic write so a checkpoint that lands torn on disk still
/// leaves the prior good one restorable.  Returns the verification failure
/// that got the primary rejected and removed (empty when the primary was
/// absent or rotated cleanly) — recovery reports record it so "restored
/// from backup" always says why the primary was distrusted.
std::string rotate_backup(const std::string& path);

/// load_checkpoint_v2 with degradation: when the primary fails (missing,
/// truncated, CRC mismatch), falls back to the `.bak` mirror.  Returns the
/// path actually restored from; throws IoError describing both failures
/// when neither loads.  When the backup is used and `primary_error` is
/// non-null, it receives the reason the primary was rejected.
std::string load_checkpoint_v2_or_backup(const std::string& path,
                                         const MutableCheckpointParts& parts,
                                         std::string* primary_error = nullptr);

// --- lower-level access (tests, tooling) -----------------------------------

/// Raw named sections, in file order.
using CheckpointSections = std::vector<std::pair<std::string, std::string>>;

/// Builds the container blob (header + sections + CRC) in memory.
[[nodiscard]] std::string encode_checkpoint(const CheckpointSections& sections);

/// Parses and validates a container blob.  Throws IoError.
[[nodiscard]] CheckpointSections decode_checkpoint(std::string_view blob);

/// Atomic *and durable* write of an arbitrary blob: temp file, fsync of
/// the temp file, rename, fsync of the parent directory — so the rename
/// itself survives power loss, not just the data.  Honors the
/// kIoWriteFail / kIoShortWrite fault-injection points (which model a
/// crash between write and fsync).
void write_file_atomic(const std::string& path, std::string_view blob);

/// write_file_atomic without fault-injection polling, for control-plane
/// writers (the fleet status file) that must not consume fault events
/// armed against tenants.  Same tmp + fsync + rename + dir-fsync
/// durability contract.
void write_file_durable(const std::string& path, std::string_view blob);

/// Reads a whole file; throws IoError when it cannot be opened.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace antmd::io
