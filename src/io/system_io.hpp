// Text serialization of built systems (SystemSpec): lets users persist a
// builder's output, edit it, and reload it — the "bring your own system"
// path a downstream adopter needs.
//
// Format: line-oriented `antmd-system v1`; sections are `<name> <count>`
// headers followed by that many records.  Exclusions and 1-4 pairs are
// regenerated from connectivity on load (custom exclusions added by hand
// after building are not round-tripped; everything else is).
#pragma once

#include <string>

#include "topo/builders.hpp"

namespace antmd::io {

void save_system(const SystemSpec& spec, const std::string& path);
[[nodiscard]] SystemSpec load_system(const std::string& path);

/// String-based variants (testing and embedding).
[[nodiscard]] std::string system_to_string(const SystemSpec& spec);
[[nodiscard]] SystemSpec system_from_string(const std::string& text);

}  // namespace antmd::io
