// Trajectory and table output: XYZ frames for visualization, CSV series for
// analysis, and binary checkpoints for exact restarts.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "md/state.hpp"
#include "topo/topology.hpp"

namespace antmd::io {

/// Writes frames in extended XYZ format (element = atom type name).
class XyzWriter {
 public:
  XyzWriter(const std::string& path, const Topology& topo);

  void write_frame(const State& state);
  [[nodiscard]] size_t frames_written() const { return frames_; }

 private:
  std::ofstream out_;
  const Topology* topo_;
  size_t frames_ = 0;
};

/// Simple CSV writer with a fixed header.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  void write_row(std::span<const double> values);
  [[nodiscard]] size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  size_t columns_;
  size_t rows_ = 0;
};

/// Binary checkpoint of the dynamic state (positions, velocities, box,
/// clock). Restart is bit-exact.  Stored as a v2 container (see
/// io/checkpoint.hpp) with a single "state" section: atomic write,
/// CRC-verified load.  load_checkpoint throws IoError on missing,
/// truncated, or wrong-magic/corrupt files.
void save_checkpoint(const std::string& path, const State& state);
[[nodiscard]] State load_checkpoint(const std::string& path);

}  // namespace antmd::io
