// Trajectory and table output: XYZ frames for visualization, CSV series for
// analysis, and binary checkpoints for exact restarts.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "md/state.hpp"
#include "topo/topology.hpp"

namespace antmd::io {

/// Writes frames in extended XYZ format (element = atom type name).
///
/// Each frame is built in memory and written in one streamed block followed
/// by a flush, so a crash can tear at most the frame being written — the
/// kIoShortWrite fault point models exactly that (half a frame reaches the
/// disk).  repair_xyz() truncates such a tail so a resumed run can reopen
/// the file with `append = true` and continue from the last good frame.
class XyzWriter {
 public:
  XyzWriter(const std::string& path, const Topology& topo,
            bool append = false);

  void write_frame(const State& state);
  [[nodiscard]] size_t frames_written() const { return frames_; }

 private:
  std::ofstream out_;
  const Topology* topo_;
  size_t frames_ = 0;
};

/// Result of scanning/repairing a trajectory file after a crash.
struct XyzRepair {
  size_t frames_kept = 0;    ///< complete frames remaining in the file
  size_t bytes_removed = 0;  ///< partial-frame tail truncated away
  [[nodiscard]] bool truncated() const { return bytes_removed > 0; }
};

/// Scans an XYZ trajectory frame by frame (atom-count line, comment line,
/// then exactly that many well-formed atom lines) and truncates the file to
/// the last complete frame when a torn/partial tail is found.  Missing file
/// throws IoError; an empty or fully-torn file is truncated to zero frames.
XyzRepair repair_xyz(const std::string& path);

/// Simple CSV writer with a fixed header.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  void write_row(std::span<const double> values);
  [[nodiscard]] size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  size_t columns_;
  size_t rows_ = 0;
};

/// Binary checkpoint of the dynamic state (positions, velocities, box,
/// clock). Restart is bit-exact.  Stored as a v2 container (see
/// io/checkpoint.hpp) with a single "state" section: atomic write,
/// CRC-verified load.  load_checkpoint throws IoError on missing,
/// truncated, or wrong-magic/corrupt files.
void save_checkpoint(const std::string& path, const State& state);
[[nodiscard]] State load_checkpoint(const std::string& path);

}  // namespace antmd::io
