#include "io/trajectory.hpp"

#include <iomanip>

#include "io/checkpoint.hpp"
#include "md/serialize.hpp"
#include "util/error.hpp"

namespace antmd::io {

XyzWriter::XyzWriter(const std::string& path, const Topology& topo)
    : out_(path), topo_(&topo) {
  if (!out_.good()) {
    throw IoError("cannot open trajectory file: " + path);
  }
}

void XyzWriter::write_frame(const State& state) {
  ANTMD_REQUIRE(state.positions.size() == topo_->atom_count(),
                "state size mismatch");
  out_ << topo_->atom_count() << '\n';
  out_ << "step=" << state.step << " time_internal=" << state.time
       << " box=" << state.box.edges().x << ',' << state.box.edges().y << ','
       << state.box.edges().z << '\n';
  out_ << std::setprecision(8);
  for (size_t i = 0; i < topo_->atom_count(); ++i) {
    const auto& name = topo_->types()[topo_->type_ids()[i]].name;
    const Vec3& p = state.positions[i];
    out_ << name << ' ' << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  ++frames_;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> columns)
    : out_(path), columns_(columns.size()) {
  if (!out_.good()) {
    throw IoError("cannot open CSV file: " + path);
  }
  ANTMD_REQUIRE(!columns.empty(), "CSV needs at least one column");
  for (size_t c = 0; c < columns.size(); ++c) {
    out_ << columns[c] << (c + 1 < columns.size() ? "," : "\n");
  }
}

void CsvWriter::write_row(std::span<const double> values) {
  ANTMD_REQUIRE(values.size() == columns_, "CSV row width mismatch");
  out_ << std::setprecision(12);
  for (size_t c = 0; c < values.size(); ++c) {
    out_ << values[c] << (c + 1 < values.size() ? "," : "\n");
  }
  ++rows_;
}

void save_checkpoint(const std::string& path, const State& state) {
  util::BinaryWriter w;
  md::write_state(w, state);
  write_file_atomic(path, encode_checkpoint({{"state", w.buffer()}}));
}

State load_checkpoint(const std::string& path) {
  CheckpointSections sections = decode_checkpoint(read_file(path));
  for (const auto& [name, payload] : sections) {
    if (name == "state") {
      util::BinaryReader r(payload);
      return md::read_state(r);
    }
  }
  throw IoError("checkpoint has no 'state' section: " + path);
}

}  // namespace antmd::io
