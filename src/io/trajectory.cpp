#include "io/trajectory.hpp"

#include <iomanip>

#include "util/error.hpp"

namespace antmd::io {

XyzWriter::XyzWriter(const std::string& path, const Topology& topo)
    : out_(path), topo_(&topo) {
  ANTMD_REQUIRE(out_.good(), "cannot open trajectory file: " + path);
}

void XyzWriter::write_frame(const State& state) {
  ANTMD_REQUIRE(state.positions.size() == topo_->atom_count(),
                "state size mismatch");
  out_ << topo_->atom_count() << '\n';
  out_ << "step=" << state.step << " time_internal=" << state.time
       << " box=" << state.box.edges().x << ',' << state.box.edges().y << ','
       << state.box.edges().z << '\n';
  out_ << std::setprecision(8);
  for (size_t i = 0; i < topo_->atom_count(); ++i) {
    const auto& name = topo_->types()[topo_->type_ids()[i]].name;
    const Vec3& p = state.positions[i];
    out_ << name << ' ' << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  ++frames_;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> columns)
    : out_(path), columns_(columns.size()) {
  ANTMD_REQUIRE(out_.good(), "cannot open CSV file: " + path);
  ANTMD_REQUIRE(!columns.empty(), "CSV needs at least one column");
  for (size_t c = 0; c < columns.size(); ++c) {
    out_ << columns[c] << (c + 1 < columns.size() ? "," : "\n");
  }
}

void CsvWriter::write_row(std::span<const double> values) {
  ANTMD_REQUIRE(values.size() == columns_, "CSV row width mismatch");
  out_ << std::setprecision(12);
  for (size_t c = 0; c < values.size(); ++c) {
    out_ << values[c] << (c + 1 < values.size() ? "," : "\n");
  }
  ++rows_;
}

namespace {

constexpr uint64_t kCheckpointMagic = 0x414E544D44435031ull;  // "ANTMDCP1"

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
}

}  // namespace

void save_checkpoint(const std::string& path, const State& state) {
  std::ofstream out(path, std::ios::binary);
  ANTMD_REQUIRE(out.good(), "cannot open checkpoint file: " + path);
  write_pod(out, kCheckpointMagic);
  uint64_t n = state.positions.size();
  write_pod(out, n);
  write_pod(out, state.time);
  write_pod(out, state.step);
  Vec3 edges = state.box.edges();
  write_pod(out, edges);
  out.write(reinterpret_cast<const char*>(state.positions.data()),
            static_cast<std::streamsize>(n * sizeof(Vec3)));
  out.write(reinterpret_cast<const char*>(state.velocities.data()),
            static_cast<std::streamsize>(n * sizeof(Vec3)));
  ANTMD_REQUIRE(out.good(), "checkpoint write failed: " + path);
}

State load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ANTMD_REQUIRE(in.good(), "cannot open checkpoint file: " + path);
  uint64_t magic = 0;
  read_pod(in, magic);
  ANTMD_REQUIRE(magic == kCheckpointMagic, "not an antmd checkpoint");
  uint64_t n = 0;
  read_pod(in, n);
  State state;
  read_pod(in, state.time);
  read_pod(in, state.step);
  Vec3 edges;
  read_pod(in, edges);
  state.box = Box(edges.x, edges.y, edges.z);
  state.positions.resize(n);
  state.velocities.resize(n);
  in.read(reinterpret_cast<char*>(state.positions.data()),
          static_cast<std::streamsize>(n * sizeof(Vec3)));
  in.read(reinterpret_cast<char*>(state.velocities.data()),
          static_cast<std::streamsize>(n * sizeof(Vec3)));
  ANTMD_REQUIRE(in.good(), "checkpoint truncated: " + path);
  return state;
}

}  // namespace antmd::io
