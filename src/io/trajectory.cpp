#include "io/trajectory.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "io/checkpoint.hpp"
#include "md/serialize.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace antmd::io {

XyzWriter::XyzWriter(const std::string& path, const Topology& topo,
                     bool append)
    : out_(path, append ? std::ios::out | std::ios::app : std::ios::out),
      topo_(&topo) {
  if (!out_.good()) {
    throw IoError("cannot open trajectory file: " + path);
  }
}

void XyzWriter::write_frame(const State& state) {
  ANTMD_REQUIRE(state.positions.size() == topo_->atom_count(),
                "state size mismatch");
  std::ostringstream frame;
  frame << topo_->atom_count() << '\n';
  frame << "step=" << state.step << " time_internal=" << state.time
        << " box=" << state.box.edges().x << ',' << state.box.edges().y << ','
        << state.box.edges().z << '\n';
  frame << std::setprecision(8);
  for (size_t i = 0; i < topo_->atom_count(); ++i) {
    const auto& name = topo_->types()[topo_->type_ids()[i]].name;
    const Vec3& p = state.positions[i];
    frame << name << ' ' << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  const std::string text = std::move(frame).str();
  size_t n = text.size();
  // Torn write: the process "crashes" after half the frame hit the disk.
  // repair_xyz() detects the partial frame and truncates back to the last
  // complete one.
  if (fault::should_fire(fault::FaultKind::kIoShortWrite)) n /= 2;
  out_.write(text.data(), static_cast<std::streamsize>(n));
  out_.flush();
  if (!out_.good()) {
    throw IoError("trajectory write failed");
  }
  ++frames_;
}

namespace {

/// [begin, end) of one line starting at `pos`; returns false when the text
/// ends before a terminating newline (an incomplete, torn line).
bool take_line(const std::string& text, size_t pos, size_t* begin,
               size_t* end) {
  if (pos >= text.size()) return false;
  size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) return false;
  *begin = pos;
  *end = nl;
  return true;
}

/// An atom line must hold a name token plus three finite coordinates.
bool valid_atom_line(const std::string& text, size_t begin, size_t end) {
  std::istringstream is(text.substr(begin, end - begin));
  std::string name;
  double x, y, z;
  if (!(is >> name >> x >> y >> z)) return false;
  return true;
}

}  // namespace

XyzRepair repair_xyz(const std::string& path) {
  const std::string text = read_file(path);
  XyzRepair repair;
  size_t pos = 0;
  size_t good_end = 0;
  while (pos < text.size()) {
    size_t begin, end;
    // atom-count header
    if (!take_line(text, pos, &begin, &end)) break;
    char* parse_end = nullptr;
    const std::string count_line = text.substr(begin, end - begin);
    unsigned long atoms = std::strtoul(count_line.c_str(), &parse_end, 10);
    if (parse_end == count_line.c_str() || *parse_end != '\0' || atoms == 0) {
      break;
    }
    // comment line
    size_t cursor = end + 1;
    if (!take_line(text, cursor, &begin, &end)) break;
    cursor = end + 1;
    // atom lines
    bool complete = true;
    for (unsigned long i = 0; i < atoms; ++i) {
      if (!take_line(text, cursor, &begin, &end) ||
          !valid_atom_line(text, begin, end)) {
        complete = false;
        break;
      }
      cursor = end + 1;
    }
    if (!complete) break;
    good_end = cursor;
    ++repair.frames_kept;
    pos = cursor;
  }
  if (good_end < text.size()) {
    repair.bytes_removed = text.size() - good_end;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw IoError("cannot truncate trajectory file: " + path);
    }
    out.write(text.data(), static_cast<std::streamsize>(good_end));
    if (!out.good()) {
      throw IoError("trajectory truncation failed: " + path);
    }
  }
  return repair;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> columns)
    : out_(path), columns_(columns.size()) {
  if (!out_.good()) {
    throw IoError("cannot open CSV file: " + path);
  }
  ANTMD_REQUIRE(!columns.empty(), "CSV needs at least one column");
  for (size_t c = 0; c < columns.size(); ++c) {
    out_ << columns[c] << (c + 1 < columns.size() ? "," : "\n");
  }
}

void CsvWriter::write_row(std::span<const double> values) {
  ANTMD_REQUIRE(values.size() == columns_, "CSV row width mismatch");
  out_ << std::setprecision(12);
  for (size_t c = 0; c < values.size(); ++c) {
    out_ << values[c] << (c + 1 < values.size() ? "," : "\n");
  }
  ++rows_;
}

void save_checkpoint(const std::string& path, const State& state) {
  util::BinaryWriter w;
  md::write_state(w, state);
  write_file_atomic(path, encode_checkpoint({{"state", w.buffer()}}));
}

State load_checkpoint(const std::string& path) {
  CheckpointSections sections = decode_checkpoint(read_file(path));
  for (const auto& [name, payload] : sections) {
    if (name == "state") {
      util::BinaryReader r(payload);
      return md::read_state(r);
    }
  }
  throw IoError("checkpoint has no 'state' section: " + path);
}

}  // namespace antmd::io
