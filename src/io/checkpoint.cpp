#include "io/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/fault.hpp"

namespace antmd::io {

namespace {

// Durability helpers: an ofstream flush hands the bytes to the kernel, but
// only fsync moves them to stable storage, and only an fsync of the parent
// directory makes the *rename* durable.  Without these a checkpoint or
// fleet status file can vanish across power loss even though the write
// "succeeded" — silently rewinding recovery state.

/// fsync of a just-written file; throws so callers treat a sync failure
/// like a write failure (the data is not actually safe).
void sync_file(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError("cannot reopen for fsync: " + path);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw IoError("fsync failed: " + path);
  }
  ::close(fd);
#else
  (void)path;
#endif
}

/// Best-effort fsync of the directory containing `path` (some filesystems
/// refuse directory opens or directory fsync; the rename is still atomic,
/// just not guaranteed durable there).
void sync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const size_t slash = path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

void write_file_impl(const std::string& path, std::string_view blob,
                     bool poll_faults) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw IoError("cannot open checkpoint temp file: " + tmp);
    }
    size_t n = blob.size();
    // Torn write: only part of the blob reaches the disk, but the rename
    // below still happens — exactly what a crash between write and fsync
    // produces.  The CRC rejects the result at load time.
    if (poll_faults && fault::should_fire(fault::FaultKind::kIoShortWrite)) {
      n /= 2;
    }
    out.write(blob.data(), static_cast<std::streamsize>(n));
    out.flush();
    if ((poll_faults && fault::should_fire(fault::FaultKind::kIoWriteFail)) ||
        !out.good()) {
      out.close();
      std::remove(tmp.c_str());
      throw IoError("checkpoint write failed (out of space?): " + tmp);
    }
  }
  try {
    sync_file(tmp);
  } catch (const IoError&) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename checkpoint into place: " + path);
  }
  sync_parent_dir(path);
}

}  // namespace

std::string encode_checkpoint(const CheckpointSections& sections) {
  util::BinaryWriter w;
  w.write_u64(kCheckpointMagicV2);
  w.write_u32(kCheckpointVersion);
  w.write_u32(static_cast<uint32_t>(sections.size()));
  for (const auto& [name, payload] : sections) {
    w.write_string(name);
    w.write_string(payload);
  }
  uint32_t crc = util::crc32(w.buffer().data(), w.buffer().size());
  w.write_u32(crc);
  return w.buffer();
}

CheckpointSections decode_checkpoint(std::string_view blob) {
  constexpr size_t kHeaderBytes = 8 + 4 + 4;
  if (blob.size() < kHeaderBytes + 4) {
    throw IoError("checkpoint truncated: " +
                        std::to_string(blob.size()) + " bytes");
  }
  util::BinaryReader header(blob);
  if (header.read_u64() != kCheckpointMagicV2) {
    throw IoError("not an antmd checkpoint (bad magic)");
  }
  uint32_t version = header.read_u32();
  if (version != kCheckpointVersion) {
    throw IoError("unsupported checkpoint version " +
                        std::to_string(version));
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, blob.data() + blob.size() - 4, 4);
  uint32_t actual_crc = util::crc32(blob.data(), blob.size() - 4);
  if (stored_crc != actual_crc) {
    throw IoError("checkpoint corrupt (CRC mismatch)");
  }

  uint32_t count = header.read_u32();
  util::BinaryReader body(
      blob.substr(header.position(), blob.size() - 4 - header.position()));
  CheckpointSections sections;
  sections.reserve(count);
  for (uint32_t s = 0; s < count; ++s) {
    std::string name = body.read_string();
    std::string payload = body.read_string();
    sections.emplace_back(std::move(name), std::move(payload));
  }
  return sections;
}

void write_file_atomic(const std::string& path, std::string_view blob) {
  write_file_impl(path, blob, /*poll_faults=*/true);
}

void write_file_durable(const std::string& path, std::string_view blob) {
  write_file_impl(path, blob, /*poll_faults=*/false);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw IoError("cannot open checkpoint file: " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return std::move(os).str();
}

void save_checkpoint_v2(const std::string& path,
                        const CheckpointParts& parts) {
  CheckpointSections sections;
  sections.reserve(parts.size());
  for (const auto& [name, part] : parts) {
    util::BinaryWriter w;
    part->save_checkpoint(w);
    sections.emplace_back(name, w.buffer());
  }
  write_file_atomic(path, encode_checkpoint(sections));
}

std::string backup_path(const std::string& path) { return path + ".bak"; }

std::string rotate_backup(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe.good()) return {};  // nothing to rotate
  probe.close();

  // Only a checkpoint that passes its own CRC may shadow the previous
  // backup: a primary torn by a crash or short write (kIoShortWrite renames
  // a truncated blob into place) is discarded here, so `.bak` keeps the
  // last generation that actually restores.  The verification failure is
  // returned so the caller's recovery report can say *why* the primary was
  // thrown away instead of silently losing the evidence.
  std::string blob = read_file(path);
  try {
    (void)decode_checkpoint(blob);
  } catch (const IoError& e) {
    std::remove(path.c_str());
    return e.what();
  }

  // Promote via temp file + rename: the rename is atomic, so `.bak` is
  // either the old generation or the complete new one — never truncated.
  const std::string bak = backup_path(path);
  const std::string tmp = bak + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      throw IoError("cannot write checkpoint backup: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), bak.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rotate checkpoint backup: " + path);
  }
  std::remove(path.c_str());
  return {};
}

std::string load_checkpoint_v2_or_backup(
    const std::string& path, const MutableCheckpointParts& parts,
    std::string* primary_error_out) {
  std::string primary_error;
  if (primary_error_out) primary_error_out->clear();
  try {
    load_checkpoint_v2(path, parts);
    return path;
  } catch (const IoError& e) {
    primary_error = e.what();
  }
  const std::string bak = backup_path(path);
  try {
    load_checkpoint_v2(bak, parts);
    if (primary_error_out) *primary_error_out = primary_error;
    return bak;
  } catch (const IoError& e) {
    throw IoError("checkpoint unusable (" + primary_error +
                  ") and backup unusable (" + e.what() + ")");
  }
}

void load_checkpoint_v2(const std::string& path,
                        const MutableCheckpointParts& parts) {
  CheckpointSections sections = decode_checkpoint(read_file(path));
  for (const auto& [name, part] : parts) {
    const std::string* payload = nullptr;
    for (const auto& [sname, spayload] : sections) {
      if (sname == name) {
        payload = &spayload;
        break;
      }
    }
    if (!payload) {
      throw IoError("checkpoint missing section '" + name + "': " +
                          path);
    }
    util::BinaryReader r(*payload);
    part->restore_checkpoint(r);
  }
}

}  // namespace antmd::io
