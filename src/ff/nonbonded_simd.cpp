#include "ff/nonbonded_simd.hpp"

#include <atomic>
#include <cstdlib>

#include "util/error.hpp"

namespace antmd::ff {

const char* to_string(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kSse41: return "sse41";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx512: return "avx512";
  }
  return "scalar";
}

KernelIsa parse_kernel_isa(const std::string& name) {
  if (name == "scalar") return KernelIsa::kScalar;
  if (name == "sse41") return KernelIsa::kSse41;
  if (name == "avx2") return KernelIsa::kAvx2;
  if (name == "avx512") return KernelIsa::kAvx512;
  throw ConfigError(
      "kernel ISA must be \"scalar\", \"sse41\", \"avx2\" or \"avx512\", "
      "got \"" + name + "\"");
}

bool kernel_isa_supported(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kSse41:
#if defined(ANTMD_HAVE_SIMD_SSE41)
      return __builtin_cpu_supports("sse4.1");
#else
      return false;
#endif
    case KernelIsa::kAvx2:
#if defined(ANTMD_HAVE_SIMD_AVX2)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case KernelIsa::kAvx512:
#if defined(ANTMD_HAVE_SIMD_AVX512)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

KernelIsa probe_kernel_isa() {
  if (kernel_isa_supported(KernelIsa::kAvx512)) return KernelIsa::kAvx512;
  if (kernel_isa_supported(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
  if (kernel_isa_supported(KernelIsa::kSse41)) return KernelIsa::kSse41;
  return KernelIsa::kScalar;
}

namespace {

// The active ISA affects dispatch speed only — every variant is
// bit-identical — so one process-global is safe even with several engines
// in flight (fleet runs): whatever value a worker reads, the physics is
// the same.
struct IsaState {
  bool env_forced = false;
  std::atomic<KernelIsa> active{KernelIsa::kScalar};
  IsaState() {
    const char* env = std::getenv("ANTMD_FORCE_ISA");
    if (env != nullptr && *env != '\0') {
      const KernelIsa isa = parse_kernel_isa(env);
      if (!kernel_isa_supported(isa)) {
        throw ConfigError(std::string("ANTMD_FORCE_ISA=") + env +
                          " is not supported by this build/CPU");
      }
      active.store(isa, std::memory_order_relaxed);
      env_forced = true;
    } else {
      active.store(probe_kernel_isa(), std::memory_order_relaxed);
    }
  }
};

IsaState& isa_state() {
  static IsaState s;  // resolves the env override exactly once
  return s;
}

}  // namespace

KernelIsa active_kernel_isa() {
  return isa_state().active.load(std::memory_order_relaxed);
}

void set_kernel_isa(KernelIsa isa) {
  if (!kernel_isa_supported(isa)) {
    throw ConfigError(std::string("kernel ISA \"") + to_string(isa) +
                      "\" is not supported by this build/CPU");
  }
  IsaState& s = isa_state();
  if (s.env_forced) return;  // the differential harness's override wins
  s.active.store(isa, std::memory_order_relaxed);
}

}  // namespace antmd::ff
