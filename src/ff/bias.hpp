// Generic pair-distance bias potentials.
//
// Enhanced-sampling methods (metadynamics, TAMD) need a time-varying,
// arbitrary-shape potential on a collective variable.  On Anton these run
// as small programs on the geometry cores; here they are closures evaluated
// on the CPU.  The closure returns {energy, dU/dr} at the current pair
// distance.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "ff/energy.hpp"
#include "math/pbc.hpp"
#include "topo/topology.hpp"

namespace antmd::ff {

struct PairBias {
  uint32_t i = 0;
  uint32_t j = 0;
  /// r -> {U(r), dU/dr}
  std::function<std::pair<double, double>(double)> potential;
};

void compute_pair_biases(std::span<const PairBias> biases,
                         std::span<const Vec3> pos, const Box& box,
                         ForceResult& out);

/// Bias on a torsion collective variable (alanine-dipeptide-style
/// metadynamics).  The closure maps phi (radians, in (-pi, pi]) to
/// {U(phi), dU/dphi}; it must itself be 2π-periodic.
struct DihedralBias {
  uint32_t i = 0, j = 0, k = 0, l = 0;
  std::function<std::pair<double, double>(double)> potential;
};

void compute_dihedral_biases(std::span<const DihedralBias> biases,
                             std::span<const Vec3> pos, const Box& box,
                             ForceResult& out);

}  // namespace antmd::ff
