// Restraint and biasing forces — part of the generality extensions.
//
// These are time-dependent or geometrically irregular terms that run on the
// programmable geometry cores in the machine model.  They enable steered MD,
// umbrella sampling, and position anchoring of the kind the Shaw-group
// methods papers (ligand pulling, enhanced sampling) rely on.
#pragma once

#include <span>
#include <vector>

#include "ff/energy.hpp"
#include "math/pbc.hpp"

namespace antmd::ff {

/// Harmonic position restraint with optional flat bottom:
/// U = k max(0, |r - center| - flat_radius)².
struct PositionRestraint {
  uint32_t atom = 0;
  Vec3 center;
  double k = 0.0;            ///< kcal/mol/Å²
  double flat_radius = 0.0;  ///< Å
};

/// Harmonic distance restraint between two atoms:
/// U = k (|r_ij| - r0)² outside the flat region [r0-flat, r0+flat].
struct DistanceRestraint {
  uint32_t i = 0, j = 0;
  double k = 0.0;
  double r0 = 0.0;
  double flat_half_width = 0.0;
};

/// Moving-anchor spring for steered MD: the reference distance moves at
/// `velocity` (Å per internal time unit) starting from r_start.
/// U(t) = k (|r_ij| - (r_start + velocity t))².
struct SteeredSpring {
  uint32_t i = 0, j = 0;
  double k = 0.0;
  double r_start = 0.0;
  double velocity = 0.0;
};

/// Uniform external field: U = -q E·r (forces only; the energy of a
/// periodic system in a uniform field is gauge-dependent, so we charge the
/// work to the `external` bucket via the force path only).
struct ExternalField {
  Vec3 field;  ///< kcal/mol/Å/e
};

void compute_position_restraints(std::span<const PositionRestraint> restraints,
                                 std::span<const Vec3> pos, const Box& box,
                                 ForceResult& out);

void compute_distance_restraints(std::span<const DistanceRestraint> restraints,
                                 std::span<const Vec3> pos, const Box& box,
                                 ForceResult& out);

/// `time` is the elapsed simulation time in internal units.
/// Returns the instantaneous spring extensions (one per spring) so steered-MD
/// drivers can record work; forces/energies accumulate into `out`.
std::vector<double> compute_steered_springs(
    std::span<const SteeredSpring> springs, std::span<const Vec3> pos,
    const Box& box, double time, ForceResult& out);

void compute_external_field(const ExternalField& field,
                            std::span<const double> charges,
                            std::span<const Vec3> pos, ForceResult& out);

}  // namespace antmd::ff
