#include "ff/bonded.hpp"

#include <algorithm>
#include <cmath>

namespace antmd::ff {
namespace {

/// Adds r⊗f to the virial for a pair separated by d with force f on atom i.
void add_virial(Mat3& virial, const Vec3& d, const Vec3& f) {
  virial += outer(d, f);
}

}  // namespace

void compute_bonds(std::span<const Bond> bonds, std::span<const Vec3> pos,
                   const Box& box, ForceResult& out) {
  for (const Bond& b : bonds) {
    Vec3 d = box.min_image(pos[b.i], pos[b.j]);
    double r = norm(d);
    double dr = r - b.r0;
    // U = k (r - r0)^2 ; dU/dr = 2 k (r - r0)
    double f_over_r = -2.0 * b.k * dr / r;
    Vec3 f = f_over_r * d;  // force on i
    out.forces.add_pair(b.i, b.j, f);
    out.energy.bond.add(b.k * dr * dr);
    add_virial(out.virial, d, f);
  }
}

void compute_angles(std::span<const Angle> angles, std::span<const Vec3> pos,
                    const Box& box, ForceResult& out) {
  for (const Angle& a : angles) {
    // rij: apex->i, rkj: apex->k
    Vec3 rij = box.min_image(pos[a.i], pos[a.j]);
    Vec3 rkj = box.min_image(pos[a.k_atom], pos[a.j]);
    double lij = norm(rij);
    double lkj = norm(rkj);
    double cosang = dot(rij, rkj) / (lij * lkj);
    cosang = std::clamp(cosang, -1.0, 1.0);
    double theta = std::acos(cosang);
    double dtheta = theta - a.theta0;
    // F_i = -dU/dθ ∂θ/∂r_i = (2 k Δθ / sinθ) ∂cosθ/∂r_i.
    double sin_theta = std::sqrt(std::max(1.0 - cosang * cosang, 1e-12));
    double coeff = 2.0 * a.k * dtheta / sin_theta;

    Vec3 fi = (coeff / lij) * ((1.0 / lkj) * rkj - (cosang / lij) * rij);
    Vec3 fk = (coeff / lkj) * ((1.0 / lij) * rij - (cosang / lkj) * rkj);
    Vec3 fj = -(fi + fk);

    out.forces.add(a.i, fi);
    out.forces.add(a.j, fj);
    out.forces.add(a.k_atom, fk);
    out.energy.angle.add(a.k * dtheta * dtheta);
    add_virial(out.virial, rij, fi);
    add_virial(out.virial, rkj, fk);
  }
}

double dihedral_angle(const Vec3& ri, const Vec3& rj, const Vec3& rk,
                      const Vec3& rl, const Box& box) {
  Vec3 b1 = box.min_image(rj, ri);
  Vec3 b2 = box.min_image(rk, rj);
  Vec3 b3 = box.min_image(rl, rk);
  Vec3 n1 = cross(b1, b2);
  Vec3 n2 = cross(b2, b3);
  Vec3 m1 = cross(n1, normalized(b2));
  double x = dot(n1, n2);
  double y = dot(m1, n2);
  return std::atan2(y, x);
}

void compute_dihedrals(std::span<const Dihedral> dihedrals,
                       std::span<const Vec3> pos, const Box& box,
                       ForceResult& out) {
  for (const Dihedral& d : dihedrals) {
    Vec3 b1 = box.min_image(pos[d.j], pos[d.i]);
    Vec3 b2 = box.min_image(pos[d.k_atom], pos[d.j]);
    Vec3 b3 = box.min_image(pos[d.l], pos[d.k_atom]);

    Vec3 n1 = cross(b1, b2);
    Vec3 n2 = cross(b2, b3);
    double n1sq = norm2(n1);
    double n2sq = norm2(n2);
    double lb2 = norm(b2);
    if (n1sq < 1e-12 || n2sq < 1e-12) continue;  // collinear; zero torque

    Vec3 m1 = cross(n1, b2 / lb2);
    double x = dot(n1, n2);
    double y = dot(m1, n2);
    double phi = std::atan2(y, x);

    // U = k (1 + cos(n phi - phi0)); dU/dphi = -k n sin(n phi - phi0)
    double du_dphi = -d.k * d.n * std::sin(d.n * phi - d.phi0);

    // Analytic gradient (Blondel–Karplus form, signs fixed by the atan2
    // convention used in dihedral_angle and verified against finite
    // differences in ff_test):
    //   ∂φ/∂r_i = +(|b2|/|n1|²) n1,  ∂φ/∂r_l = -(|b2|/|n2|²) n2
    Vec3 fi = -du_dphi * (lb2 / n1sq) * n1;
    Vec3 fl = du_dphi * (lb2 / n2sq) * n2;
    double c1 = dot(b1, b2) / (lb2 * lb2);
    double c2 = dot(b3, b2) / (lb2 * lb2);
    Vec3 fj = -(1.0 + c1) * fi + c2 * fl;
    Vec3 fk = -(fi + fj + fl);

    out.forces.add(d.i, fi);
    out.forces.add(d.j, fj);
    out.forces.add(d.k_atom, fk);
    out.forces.add(d.l, fl);
    out.energy.dihedral.add(d.k * (1.0 + std::cos(d.n * phi - d.phi0)));
    // Virial from atom positions relative to a common origin (atom j).
    out.virial += outer(-b1, fi);
    out.virial += outer(b2, fk);
    out.virial += outer(b2 + b3, fl);
  }
}

void compute_morse_bonds(std::span<const MorseBond> bonds,
                         std::span<const Vec3> pos, const Box& box,
                         ForceResult& out) {
  for (const MorseBond& b : bonds) {
    Vec3 d = box.min_image(pos[b.i], pos[b.j]);
    double r = norm(d);
    double ex = std::exp(-b.a * (r - b.r0));
    double one_minus = 1.0 - ex;
    // U = D (1 - e^{-a(r-r0)})²; dU/dr = 2 D a (1 - e^-..) e^-..
    double du_dr = 2.0 * b.depth * b.a * one_minus * ex;
    Vec3 f = (-du_dr / r) * d;
    out.forces.add_pair(b.i, b.j, f);
    out.energy.bond.add(b.depth * one_minus * one_minus);
    out.virial += outer(d, f);
  }
}

void compute_urey_bradleys(std::span<const UreyBradley> terms,
                           std::span<const Vec3> pos, const Box& box,
                           ForceResult& out) {
  for (const UreyBradley& u : terms) {
    Vec3 d = box.min_image(pos[u.i], pos[u.k]);
    double r = norm(d);
    double dr = r - u.s0;
    double f_over_r = -2.0 * u.kub * dr / r;
    Vec3 f = f_over_r * d;
    out.forces.add_pair(u.i, u.k, f);
    out.energy.angle.add(u.kub * dr * dr);
    out.virial += outer(d, f);
  }
}

void compute_impropers(std::span<const Improper> impropers,
                       std::span<const Vec3> pos, const Box& box,
                       ForceResult& out) {
  for (const Improper& d : impropers) {
    Vec3 b1 = box.min_image(pos[d.j], pos[d.i]);
    Vec3 b2 = box.min_image(pos[d.k_atom], pos[d.j]);
    Vec3 b3 = box.min_image(pos[d.l], pos[d.k_atom]);

    Vec3 n1 = cross(b1, b2);
    Vec3 n2 = cross(b2, b3);
    double n1sq = norm2(n1);
    double n2sq = norm2(n2);
    double lb2 = norm(b2);
    if (n1sq < 1e-12 || n2sq < 1e-12) continue;

    Vec3 m1 = cross(n1, b2 / lb2);
    double phi = std::atan2(dot(m1, n2), dot(n1, n2));
    // Wrap (phi - phi0) into (-pi, pi] so the restraint is continuous.
    double dphi = phi - d.phi0;
    while (dphi > M_PI) dphi -= 2.0 * M_PI;
    while (dphi <= -M_PI) dphi += 2.0 * M_PI;
    double du_dphi = 2.0 * d.k * dphi;

    Vec3 fi = -du_dphi * (lb2 / n1sq) * n1;
    Vec3 fl = du_dphi * (lb2 / n2sq) * n2;
    double c1 = dot(b1, b2) / (lb2 * lb2);
    double c2 = dot(b3, b2) / (lb2 * lb2);
    Vec3 fj = -(1.0 + c1) * fi + c2 * fl;
    Vec3 fk = -(fi + fj + fl);

    out.forces.add(d.i, fi);
    out.forces.add(d.j, fj);
    out.forces.add(d.k_atom, fk);
    out.forces.add(d.l, fl);
    out.energy.dihedral.add(d.k * dphi * dphi);
    out.virial += outer(-b1, fi);
    out.virial += outer(b2, fk);
    out.virial += outer(b2 + b3, fl);
  }
}

void compute_go_contacts(std::span<const GoContact> contacts,
                         std::span<const Vec3> pos, const Box& box,
                         ForceResult& out) {
  for (const GoContact& g : contacts) {
    Vec3 d = box.min_image(pos[g.i], pos[g.j]);
    double r = norm(d);
    double q = g.r_native / r;
    double q10 = std::pow(q, 10);
    double q12 = q10 * q * q;
    // U = ε (5 q¹² - 6 q¹⁰); dU/dr = (60 ε / r)(q¹⁰ - q¹²)
    double du_dr = 60.0 * g.epsilon / r * (q10 - q12);
    Vec3 f = (-du_dr / r) * d;
    out.forces.add_pair(g.i, g.j, f);
    out.energy.vdw.add(g.epsilon * (5.0 * q12 - 6.0 * q10));
    out.virial += outer(d, f);
  }
}

}  // namespace antmd::ff
