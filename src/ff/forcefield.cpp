#include "ff/forcefield.hpp"

#include "util/error.hpp"

namespace antmd {

ForceField::ForceField(const Topology& topo, ff::NonbondedModel model,
                       GseParams gse)
    : topo_(&topo), tables_(topo, model) {
  if (model.electrostatics == ff::Electrostatics::kEwaldReal) {
    gse.beta = model.ewald_beta;
    // The box is supplied per call; build with a placeholder and rebuild on
    // first use via on_box_changed.  A unit box is safe for construction.
    gse_ = std::make_unique<GseSolver>(Box::cubic(64.0), gse);
  }
  excluded_pairs_ = topo.excluded_pairs();
}

void ForceField::set_custom_pair_table(uint32_t type_a, uint32_t type_b,
                                       RadialTable table) {
  tables_.set_custom_table(type_a, type_b, std::move(table));
}

void ForceField::add_position_restraint(ff::PositionRestraint r) {
  ANTMD_REQUIRE(r.atom < topo_->atom_count(), "restraint atom out of range");
  pos_restraints_.push_back(r);
}

void ForceField::add_distance_restraint(ff::DistanceRestraint r) {
  ANTMD_REQUIRE(r.i < topo_->atom_count() && r.j < topo_->atom_count(),
                "restraint atoms out of range");
  dist_restraints_.push_back(r);
}

size_t ForceField::add_pair_bias(ff::PairBias bias) {
  ANTMD_REQUIRE(bias.i < topo_->atom_count() && bias.j < topo_->atom_count(),
                "bias atoms out of range");
  ANTMD_REQUIRE(bias.potential != nullptr, "bias needs a potential");
  biases_.push_back(std::move(bias));
  return biases_.size() - 1;
}

size_t ForceField::add_dihedral_bias(ff::DihedralBias bias) {
  const auto n = static_cast<uint32_t>(topo_->atom_count());
  ANTMD_REQUIRE(bias.i < n && bias.j < n && bias.k < n && bias.l < n,
                "bias atoms out of range");
  ANTMD_REQUIRE(bias.potential != nullptr, "bias needs a potential");
  dihedral_biases_.push_back(std::move(bias));
  return dihedral_biases_.size() - 1;
}

void ForceField::clear_pair_biases() {
  biases_.clear();
  dihedral_biases_.clear();
}

size_t ForceField::add_steered_spring(ff::SteeredSpring s) {
  ANTMD_REQUIRE(s.i < topo_->atom_count() && s.j < topo_->atom_count(),
                "spring atoms out of range");
  steered_.push_back(s);
  return steered_.size() - 1;
}

void ForceField::set_external_field(Vec3 field) {
  field_ = ff::ExternalField{field};
}

void ForceField::compute_bonded(std::span<const Vec3> pos, const Box& box,
                                double time, ForceResult& out) const {
  ff::compute_bonds(topo_->bonds(), pos, box, out);
  ff::compute_angles(topo_->angles(), pos, box, out);
  ff::compute_dihedrals(topo_->dihedrals(), pos, box, out);
  ff::compute_morse_bonds(topo_->morse_bonds(), pos, box, out);
  ff::compute_urey_bradleys(topo_->urey_bradleys(), pos, box, out);
  ff::compute_impropers(topo_->impropers(), pos, box, out);
  ff::compute_go_contacts(topo_->go_contacts(), pos, box, out);
  ff::compute_pairs14(topo_->pairs14(), tables_, topo_->type_ids(),
                      topo_->charges(), pos, box, out);
  ff::compute_position_restraints(pos_restraints_, pos, box, out);
  ff::compute_distance_restraints(dist_restraints_, pos, box, out);
  if (!steered_.empty()) {
    ff::compute_steered_springs(steered_, pos, box, time, out);
  }
  if (!biases_.empty()) {
    ff::compute_pair_biases(biases_, pos, box, out);
  }
  if (!dihedral_biases_.empty()) {
    ff::compute_dihedral_biases(dihedral_biases_, pos, box, out);
  }
  if (field_) {
    ff::compute_external_field(*field_, topo_->charges(), pos, out);
  }
}

void ForceField::compute_nonbonded(std::span<const ff::PairEntry> pairs,
                                   std::span<const Vec3> pos, const Box& box,
                                   ForceResult& out) const {
  ff::compute_pairs(pairs, tables_, topo_->type_ids(), topo_->charges(), pos,
                    box, out, vdw_scale_, charge_scale_);
}

void ForceField::compute_nonbonded_clusters(const ff::ClusterPairList& clusters,
                                            std::span<const Vec3> pos,
                                            const Box& box, ForceResult& out,
                                            ExecutionContext* exec) const {
  ff::compute_clusters(clusters, tables_, pos, box, out, vdw_scale_,
                       charge_scale_, exec);
}

void ForceField::compute_kspace(std::span<const Vec3> pos, const Box& box,
                                ForceResult& out) const {
  if (!gse_) return;
  if (charge_scale_ == 1.0) {
    gse_->compute(pos, topo_->charges(), excluded_pairs_, box, out);
  } else {
    // Charge-product scaling s means each charge scales by sqrt(s).
    std::vector<double> scaled(topo_->charges());
    double f = std::sqrt(charge_scale_);
    for (double& q : scaled) q *= f;
    gse_->compute(pos, scaled, excluded_pairs_, box, out);
  }
}

void ForceField::compute_all(std::span<Vec3> pos, const Box& box, double time,
                             std::span<const ff::PairEntry> pairs,
                             ForceResult& out) const {
  ff::construct_virtual_sites(topo_->virtual_sites(), pos, box);
  compute_bonded(pos, box, time, out);
  compute_nonbonded(pairs, pos, box, out);
  compute_kspace(pos, box, out);
  ff::spread_virtual_site_forces(topo_->virtual_sites(), pos, box,
                                 out.forces);
}

void ForceField::on_box_changed(const Box& box) {
  if (gse_) gse_->rebuild(box);
}

}  // namespace antmd
