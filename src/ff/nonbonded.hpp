// Nonbonded interactions through the tabulated-evaluator path.
//
// This file is the heart of the paper's generality story: Anton's pairwise
// point interaction modules (PPIMs) evaluate an arbitrary radial function of
// r² from on-chip tables.  Standard Lennard-Jones, real-space Ewald, FEP
// soft-core potentials and user-defined pair potentials all compile down to
// the same RadialTable representation, so a new functional form costs table
// construction — not new hardware, and (in the model) no extra per-pair time.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ff/energy.hpp"
#include "math/pbc.hpp"
#include "math/spline.hpp"
#include "topo/topology.hpp"

namespace antmd::ff {

/// A nonbonded pair produced by the neighbor list (exclusions already
/// filtered out).
struct PairEntry {
  uint32_t i = 0;
  uint32_t j = 0;
};

/// Electrostatics treatment for the real-space pair loop.
enum class Electrostatics {
  kNone,            ///< no charges
  kReactionCutoff,  ///< shifted Coulomb, no reciprocal part
  kEwaldReal,       ///< erfc-screened real-space part of Ewald/GSE
};

struct NonbondedModel {
  double cutoff = 10.0;       ///< Å
  double table_inner = 0.5;   ///< Å, inner edge of the tables
  size_t table_bins = 2048;   ///< knots per table (hardware-sized default)
  Electrostatics electrostatics = Electrostatics::kEwaldReal;
  double ewald_beta = 0.35;   ///< Å⁻¹ splitting parameter
};

/// Per-type-pair VDW tables plus one shared electrostatic kernel table.
/// Contiguous gather arena over every VDW table's packed knot data, built
/// for the integer-SIMD cluster kernels (ff/nonbonded_simd*.  A vector
/// gather needs one base pointer plus per-lane int32 offsets, so the
/// per-table packed vectors are copied side by side into one dense
/// [type_a * n_types + type_b] grid of `stride`-double slabs.  Valid only
/// when every VDW table shares identical bin geometry (s_min/s_max/ds/bin
/// count — always true for tables built by one NonbondedModel) and the
/// total fits int32 indexing; otherwise `valid` is false and dispatch
/// falls back to the scalar kernel.  The electrostatic table is a single
/// table and needs no arena (its own packed base gathers directly).
struct SimdTableArena {
  bool valid = false;
  double s_min = 0.0;
  double s_max = 0.0;
  double inv_ds = 0.0;
  double ds = 0.0;
  size_t last = 0;    ///< highest valid bin index (shared by all tables)
  size_t stride = 0;  ///< doubles per type pair: 8 * (last + 1)
  std::vector<double> data;  ///< n_types² slabs, dense in (a, b)
};

class PairTableSet {
 public:
  /// Builds LJ tables for every type pair (Lorentz–Berthelot) and the
  /// electrostatic kernel table implied by the model.
  PairTableSet(const Topology& topo, const NonbondedModel& model);

  /// Replaces the VDW table for a specific (unordered) type pair with a
  /// custom potential — the generality-extension entry point.
  void set_custom_table(uint32_t type_a, uint32_t type_b, RadialTable table);

  /// True if the given type pair uses a custom (non-LJ) table.
  [[nodiscard]] bool is_custom(uint32_t type_a, uint32_t type_b) const;

  [[nodiscard]] const RadialTable& vdw_table(uint32_t type_a,
                                             uint32_t type_b) const;
  /// Electrostatic kernel: energy = q_i q_j * table(r²).energy, etc.
  /// nullopt when the model carries no charges.
  [[nodiscard]] const std::optional<RadialTable>& elec_table() const {
    return elec_table_;
  }

  [[nodiscard]] const NonbondedModel& model() const { return model_; }
  [[nodiscard]] size_t type_count() const { return n_types_; }

  /// Gather arena for the SIMD cluster kernels; check `.valid` before use
  /// (false when custom tables broke geometry uniformity — the scalar
  /// kernel handles that case).  Rebuilt by set_custom_table.
  [[nodiscard]] const SimdTableArena& simd_arena() const { return arena_; }

  /// Visits every table's scrub regions (see RadialTable::
  /// visit_scrub_regions) as fn(name, data, bytes), with the name prefixed
  /// by the table's position ("vdw[3]." / "elec.").  Tables are immutable
  /// once built (set_custom_table replaces whole tables before a run
  /// starts), so golden CRCs registered over these regions stay valid.
  template <typename Fn>
  void visit_scrub_regions(Fn&& fn) {
    for (size_t t = 0; t < vdw_tables_.size(); ++t) {
      vdw_tables_[t].visit_scrub_regions(
          [&](const char* name, void* data, size_t bytes) {
            fn(("vdw[" + std::to_string(t) + "]." + name).c_str(), data,
               bytes);
          });
    }
    if (elec_table_) {
      elec_table_->visit_scrub_regions(
          [&](const char* name, void* data, size_t bytes) {
            fn((std::string("elec.") + name).c_str(), data, bytes);
          });
    }
  }

 private:
  [[nodiscard]] size_t index(uint32_t a, uint32_t b) const;
  void rebuild_simd_arena();

  NonbondedModel model_;
  size_t n_types_ = 0;
  std::vector<RadialTable> vdw_tables_;     // triangular, indexed by index()
  std::vector<bool> custom_;
  std::optional<RadialTable> elec_table_;
  SimdTableArena arena_;
};

/// Evaluates the pair list: per-pair table lookups, fixed-point force and
/// energy accumulation, virial.  `charge_product_scale` lets H-REMD rescale
/// electrostatics globally.
void compute_pairs(std::span<const PairEntry> pairs, const PairTableSet& tables,
                   std::span<const uint32_t> type_ids,
                   std::span<const double> charges, std::span<const Vec3> pos,
                   const Box& box, ForceResult& out,
                   double vdw_scale = 1.0, double charge_product_scale = 1.0);

/// Scaled 1-4 pairs (evaluated with plain (unscreened) Coulomb plus LJ,
/// both scaled; the Ewald exclusion correction handles the screening part).
void compute_pairs14(std::span<const Pair14> pairs,
                     const PairTableSet& tables,
                     std::span<const uint32_t> type_ids,
                     std::span<const double> charges,
                     std::span<const Vec3> pos, const Box& box,
                     ForceResult& out);

/// Builds the canonical 12-6 LJ table for (sigma, epsilon).
[[nodiscard]] RadialTable make_lj_table(double sigma, double epsilon,
                                        const NonbondedModel& model);

/// Builds a Beutler-style soft-core LJ table for FEP window λ∈[0,1]:
/// λ = 1 is the full interaction, λ = 0 fully decoupled.
[[nodiscard]] RadialTable make_softcore_lj_table(double sigma, double epsilon,
                                                 double lambda, double alpha,
                                                 const NonbondedModel& model);

}  // namespace antmd::ff
