// Energy bookkeeping shared by all force kernels.
#pragma once

#include <string>

#include "math/fixed.hpp"
#include "math/vec.hpp"

namespace antmd {

/// Per-term potential energy, accumulated in order-independent fixed point
/// so distributed and single-node evaluation agree bitwise.
struct EnergyBreakdown {
  FixedScalar bond;
  FixedScalar angle;
  FixedScalar dihedral;
  FixedScalar vdw;            ///< LJ / custom tabulated pair terms
  FixedScalar coulomb_real;   ///< real-space (erfc-screened) Coulomb
  FixedScalar coulomb_kspace; ///< reciprocal-space Ewald
  FixedScalar coulomb_self;   ///< Ewald self + excluded-pair corrections
  FixedScalar pair14;         ///< scaled 1-4 interactions
  FixedScalar restraint;      ///< position/distance/steering restraints
  FixedScalar external;       ///< external fields

  [[nodiscard]] double total() const {
    return bond.value() + angle.value() + dihedral.value() + vdw.value() +
           coulomb_real.value() + coulomb_kspace.value() +
           coulomb_self.value() + pair14.value() + restraint.value() +
           external.value();
  }

  void merge(const EnergyBreakdown& o) {
    bond.merge(o.bond);
    angle.merge(o.angle);
    dihedral.merge(o.dihedral);
    vdw.merge(o.vdw);
    coulomb_real.merge(o.coulomb_real);
    coulomb_kspace.merge(o.coulomb_kspace);
    coulomb_self.merge(o.coulomb_self);
    pair14.merge(o.pair14);
    restraint.merge(o.restraint);
    external.merge(o.external);
  }

  [[nodiscard]] std::string summary() const;
};

/// Full result of a force evaluation.
struct ForceResult {
  FixedForceArray forces;
  EnergyBreakdown energy;
  Mat3 virial;  ///< sum over interactions of r⊗f (double precision; barostat
                ///< input only, not part of the determinism contract)

  explicit ForceResult(size_t n_atoms = 0) : forces(n_atoms) {}

  void reset(size_t n_atoms) {
    forces.resize(n_atoms);
    energy = EnergyBreakdown{};
    virial = Mat3{};
  }

  void merge(const ForceResult& o) {
    forces.merge(o.forces);
    energy.merge(o.energy);
    virial += o.virial;
  }
};

}  // namespace antmd
