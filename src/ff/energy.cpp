#include "ff/energy.hpp"

#include <sstream>

namespace antmd {

std::string EnergyBreakdown::summary() const {
  std::ostringstream os;
  os << "total=" << total() << " bond=" << bond.value()
     << " angle=" << angle.value() << " dihedral=" << dihedral.value()
     << " vdw=" << vdw.value() << " coul_real=" << coulomb_real.value()
     << " coul_k=" << coulomb_kspace.value()
     << " coul_self=" << coulomb_self.value() << " 1-4=" << pair14.value()
     << " restraint=" << restraint.value()
     << " external=" << external.value();
  return os.str();
}

}  // namespace antmd
