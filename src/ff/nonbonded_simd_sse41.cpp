// SSE4.1 cluster kernel TU.  Compiled with -msse4.1 -ffp-contract=off;
// see nonbonded_simd_impl.hpp for the exactness contract.
#include "ff/nonbonded_simd.hpp"
#include "ff/nonbonded_simd_impl.hpp"
#include "math/simd.hpp"

namespace antmd::ff {

void compute_cluster_entries_sse41(const ClusterPairList& list,
                                   std::span<const ClusterPairEntry> entries,
                                   const PairTableSet& tables, const Box& box,
                                   FixedForceArray& forces,
                                   EnergyBreakdown& energy, Mat3& virial,
                                   double vdw_scale,
                                   double charge_product_scale) {
  simd_detail::run_cluster_entries_simd<simd::Sse41Traits>(
      list, entries, tables, box, forces, energy, virial, vdw_scale,
      charge_product_scale);
}

}  // namespace antmd::ff
