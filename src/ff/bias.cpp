#include "ff/bias.hpp"

#include <cmath>

namespace antmd::ff {

void compute_pair_biases(std::span<const PairBias> biases,
                         std::span<const Vec3> pos, const Box& box,
                         ForceResult& out) {
  for (const PairBias& b : biases) {
    Vec3 d = box.min_image(pos[b.i], pos[b.j]);
    double r = norm(d);
    if (r < 1e-9) continue;
    auto [energy, dudr] = b.potential(r);
    Vec3 f = (-dudr / r) * d;  // force on i
    out.forces.add_pair(b.i, b.j, f);
    out.energy.restraint.add(energy);
    out.virial += outer(d, f);
  }
}

void compute_dihedral_biases(std::span<const DihedralBias> biases,
                             std::span<const Vec3> pos, const Box& box,
                             ForceResult& out) {
  for (const DihedralBias& bias : biases) {
    Vec3 b1 = box.min_image(pos[bias.j], pos[bias.i]);
    Vec3 b2 = box.min_image(pos[bias.k], pos[bias.j]);
    Vec3 b3 = box.min_image(pos[bias.l], pos[bias.k]);
    Vec3 n1 = cross(b1, b2);
    Vec3 n2 = cross(b2, b3);
    double n1sq = norm2(n1);
    double n2sq = norm2(n2);
    double lb2 = norm(b2);
    if (n1sq < 1e-12 || n2sq < 1e-12) continue;
    Vec3 m1 = cross(n1, b2 / lb2);
    double phi = std::atan2(dot(m1, n2), dot(n1, n2));

    auto [energy, du_dphi] = bias.potential(phi);

    Vec3 fi = -du_dphi * (lb2 / n1sq) * n1;
    Vec3 fl = du_dphi * (lb2 / n2sq) * n2;
    double c1 = dot(b1, b2) / (lb2 * lb2);
    double c2 = dot(b3, b2) / (lb2 * lb2);
    Vec3 fj = -(1.0 + c1) * fi + c2 * fl;
    Vec3 fk = -(fi + fj + fl);

    out.forces.add(bias.i, fi);
    out.forces.add(bias.j, fj);
    out.forces.add(bias.k, fk);
    out.forces.add(bias.l, fl);
    out.energy.restraint.add(energy);
    out.virial += outer(-b1, fi);
    out.virial += outer(b2, fk);
    out.virial += outer(b2 + b3, fl);
  }
}

}  // namespace antmd::ff
