// Bonded force kernels: bonds, angles, dihedrals.
//
// On Anton these run on the programmable geometry cores (they involve
// square roots, trig, and irregular indexing that the hardwired pairwise
// pipelines cannot express); the machine model charges them to the flexible
// subsystem accordingly.  Kernels take spans so the distributed runtime can
// evaluate per-node slices with bit-identical results.
#pragma once

#include <span>

#include "ff/energy.hpp"
#include "math/pbc.hpp"
#include "topo/topology.hpp"

namespace antmd::ff {

void compute_bonds(std::span<const Bond> bonds, std::span<const Vec3> pos,
                   const Box& box, ForceResult& out);

void compute_angles(std::span<const Angle> angles, std::span<const Vec3> pos,
                    const Box& box, ForceResult& out);

void compute_dihedrals(std::span<const Dihedral> dihedrals,
                       std::span<const Vec3> pos, const Box& box,
                       ForceResult& out);

void compute_morse_bonds(std::span<const MorseBond> bonds,
                         std::span<const Vec3> pos, const Box& box,
                         ForceResult& out);

void compute_urey_bradleys(std::span<const UreyBradley> terms,
                           std::span<const Vec3> pos, const Box& box,
                           ForceResult& out);

/// Harmonic impropers U = k (phi - phi0)², phi taken in (-pi, pi] relative
/// to phi0 (the difference is wrapped so planarity restraints are smooth).
void compute_impropers(std::span<const Improper> impropers,
                       std::span<const Vec3> pos, const Box& box,
                       ForceResult& out);

/// Gō 12-10 native contacts: U = ε [5 (rn/r)^12 - 6 (rn/r)^10], minimum
/// -ε exactly at r = rn.
void compute_go_contacts(std::span<const GoContact> contacts,
                         std::span<const Vec3> pos, const Box& box,
                         ForceResult& out);

/// Signed dihedral angle (radians) for atoms i-j-k-l under minimum image.
[[nodiscard]] double dihedral_angle(const Vec3& ri, const Vec3& rj,
                                    const Vec3& rk, const Vec3& rl,
                                    const Box& box);

}  // namespace antmd::ff
