// Virtual interaction sites (e.g. the TIP4P M site).
//
// A virtual site has no mass: its position is constructed from its parent
// atoms before each force evaluation, and the force it accumulates is
// redistributed onto the parents afterwards so that momentum and the virial
// are preserved.  Supporting these on Anton was one of the generality
// extensions (4-site and 5-site water models).
#pragma once

#include <span>

#include "math/fixed.hpp"
#include "math/pbc.hpp"
#include "topo/topology.hpp"

namespace antmd::ff {

/// Writes the constructed positions of all virtual sites into `pos`.
void construct_virtual_sites(std::span<const VirtualSite> sites,
                             std::span<Vec3> pos, const Box& box);

/// Moves each virtual site's accumulated force onto its parents (in fixed
/// point, preserving the order-independence contract) and zeroes the site's
/// own force.
void spread_virtual_site_forces(std::span<const VirtualSite> sites,
                                std::span<const Vec3> pos, const Box& box,
                                FixedForceArray& forces);

}  // namespace antmd::ff
