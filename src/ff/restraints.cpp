#include "ff/restraints.hpp"

#include <cmath>

namespace antmd::ff {

void compute_position_restraints(std::span<const PositionRestraint> restraints,
                                 std::span<const Vec3> pos, const Box& box,
                                 ForceResult& out) {
  for (const auto& r : restraints) {
    Vec3 d = box.min_image(pos[r.atom], r.center);
    double dist = norm(d);
    double excess = dist - r.flat_radius;
    if (excess <= 0.0 || dist < 1e-12) continue;
    // U = k excess²; force = -2 k excess * d/|d|
    Vec3 f = (-2.0 * r.k * excess / dist) * d;
    out.forces.add(r.atom, f);
    out.energy.restraint.add(r.k * excess * excess);
  }
}

void compute_distance_restraints(std::span<const DistanceRestraint> restraints,
                                 std::span<const Vec3> pos, const Box& box,
                                 ForceResult& out) {
  for (const auto& r : restraints) {
    Vec3 d = box.min_image(pos[r.i], pos[r.j]);
    double dist = norm(d);
    double dev = dist - r.r0;
    double excess = 0.0;
    if (dev > r.flat_half_width) excess = dev - r.flat_half_width;
    else if (dev < -r.flat_half_width) excess = dev + r.flat_half_width;
    if (excess == 0.0 || dist < 1e-12) continue;
    Vec3 f = (-2.0 * r.k * excess / dist) * d;  // on atom i
    out.forces.add_pair(r.i, r.j, f);
    out.energy.restraint.add(r.k * excess * excess);
    out.virial += outer(d, f);
  }
}

std::vector<double> compute_steered_springs(
    std::span<const SteeredSpring> springs, std::span<const Vec3> pos,
    const Box& box, double time, ForceResult& out) {
  std::vector<double> extensions;
  extensions.reserve(springs.size());
  for (const auto& s : springs) {
    Vec3 d = box.min_image(pos[s.i], pos[s.j]);
    double dist = norm(d);
    double target = s.r_start + s.velocity * time;
    double dev = dist - target;
    extensions.push_back(dev);
    if (dist < 1e-12) continue;
    Vec3 f = (-2.0 * s.k * dev / dist) * d;  // on atom i
    out.forces.add_pair(s.i, s.j, f);
    out.energy.restraint.add(s.k * dev * dev);
    out.virial += outer(d, f);
  }
  return extensions;
}

void compute_external_field(const ExternalField& field,
                            std::span<const double> charges,
                            std::span<const Vec3> pos, ForceResult& out) {
  for (size_t i = 0; i < charges.size(); ++i) {
    if (charges[i] == 0.0) continue;
    out.forces.add(i, charges[i] * field.field);
    // Energy -q E·r (reported for diagnostics; gauge-dependent under PBC).
    out.energy.external.add(-charges[i] * dot(field.field, pos[i]));
  }
}

}  // namespace antmd::ff
