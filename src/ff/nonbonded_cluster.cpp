#include "ff/nonbonded_cluster.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "ff/nonbonded_simd.hpp"
#include "util/error.hpp"

namespace antmd::ff {

NonbondedKernel parse_nonbonded_kernel(const std::string& name) {
  if (name == "pair") return NonbondedKernel::kPair;
  if (name == "cluster") return NonbondedKernel::kCluster;
  throw ConfigError("nonbonded_kernel must be \"pair\" or \"cluster\", got \"" +
                    name + "\"");
}

const char* to_string(NonbondedKernel kernel) {
  return kernel == NonbondedKernel::kPair ? "pair" : "cluster";
}

void gather_cluster_coords(const ClusterPairList& list,
                           std::span<const Vec3> pos) {
  const size_t slots = list.atoms.size();
  list.sx.resize(slots);
  list.sy.resize(slots);
  list.sz.resize(slots);
  for (size_t s = 0; s < slots; ++s) {
    const uint32_t atom = list.atoms[s];
    if (atom == kPadAtom) {
      // Never read through the mask; any finite value works.
      list.sx[s] = 0.0;
      list.sy[s] = 0.0;
      list.sz[s] = 0.0;
      continue;
    }
    const Vec3& p = pos[atom];
    list.sx[s] = p.x;
    list.sy[s] = p.y;
    list.sz[s] = p.z;
  }
}

namespace {

// The inner loop, specialized at compile time on whether an electrostatics
// table is present, whether both lambda scales are exactly 1 (x * 1.0 == x
// for every double, so skipping the multiply is bit-identical), and whether
// every table covers the cutoff (s_max >= cutoff², so the eval's own range
// check can never fire and is skipped).  kSingleType handles the common
// single-species case: the lone table view lives in registers for the whole
// loop, so per-pair type loads and grid indexing disappear.  All variants
// produce bit-identical results to the generic path; they only shed work
// that is provably dead.
template <bool kHasElec, bool kUnitScale, bool kTightTables, bool kSingleType,
          unsigned kWidth>
void cluster_entries_impl(const ClusterPairList& list,
                          std::span<const ClusterPairEntry> entries,
                          std::span<const RadialTableView> grid,
                          size_t n_types, const RadialTableView& elec,
                          double cutoff2, const Box& box,
                          FixedForceArray& forces, EnergyBreakdown& energy,
                          Mat3& virial, double vdw_scale,
                          double charge_product_scale) {
  const double* sx = list.sx.data();
  const double* sy = list.sy.data();
  const double* sz = list.sz.data();
  const uint32_t* types = list.slot_types.data();
  const double* charges = list.slot_charges.data();
  const Vec3 edges = box.edges();
  const double hx = 0.5 * edges.x;
  const double hy = 0.5 * edges.y;
  const double hz = 0.5 * edges.z;

  auto eval = [](const RadialTableView& v, double r2) {
    if constexpr (kTightTables) {
      return evaluate_view_incutoff(v, r2);
    } else {
      return evaluate_view(v, r2);
    }
  };
  // By-value copy for the single-type case: a local aggregate the compiler
  // can keep entirely in registers across the loop.
  const RadialTableView only_view =
      kSingleType ? grid.front() : RadialTableView{};

  int64_t e_vdw_q = 0;
  int64_t e_elec_q = 0;
  // Canonical virial grouping: 8 sub-accumulators per component, indexed
  // s = (row parity)*4 + column.  Each sub-accumulator sums its own pairs
  // in entry order (rows ascending within an entry — the mask-bit walk is
  // row-major), and the partials are merged in ascending s at the end.
  // This is exactly the lane structure of the SIMD evaluators: 4 lanes
  // cover one tile row (lane b == column b, even/odd rows in separate
  // vector accumulators), 8 lanes cover an even/odd row pair — so scalar
  // and vector virials match bit for bit.
  constexpr unsigned kVSub = 2 * kClusterJWidth;
  double vc[9][kVSub] = {};

  // Entries arrive sorted by (ci, cj), so consecutive tiles share their
  // i-cluster.  The i-side quanta accumulate across the whole run and hit
  // memory once per run (~tens of tiles) instead of once per tile; integer
  // addition is order-independent, so per-atom totals are unchanged.
  int64_t fi[kWidth][3] = {};
  uint32_t run_ci = entries.empty() ? 0u : entries.front().ci;
  auto flush_fi = [&](uint32_t ci) {
    const size_t b = static_cast<size_t>(ci) * kWidth;
    for (unsigned k = 0; k < kWidth; ++k) {
      if ((fi[k][0] | fi[k][1] | fi[k][2]) != 0) {
        forces.add_quanta(list.atoms[b + k], {fi[k][0], fi[k][1], fi[k][2]});
        fi[k][0] = 0; fi[k][1] = 0; fi[k][2] = 0;
      }
    }
  };

  for (const ClusterPairEntry& e : entries) {
    if (e.ci != run_ci) {
      flush_fi(run_ci);
      run_ci = e.ci;
    }
    const size_t bi = static_cast<size_t>(e.ci) * kWidth;
    const size_t bj = static_cast<size_t>(e.cj) * kClusterJWidth;
    // The j-side quanta stay in registers for the tile; one scatter per
    // touched slot at tile end instead of a memory round trip per pair.
    int64_t fj[kClusterJWidth][3] = {};

    for (uint64_t m = e.mask; m != 0; m &= m - 1) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(m));
      const unsigned a = bit >> 2;
      const unsigned b = bit & 3;

      // Exact minimum image with a half-box fast path: for |d| < L/2 the
      // wrap count nearbyint(d/L) is exactly zero (division is monotone and
      // nearbyint rounds half to even), so skipping the division changes no
      // bit relative to Box::min_image.  The slow branch is the verbatim
      // Box::min_image arithmetic, taken only by boundary-crossing pairs.
      double dx = sx[bi + a] - sx[bj + b];
      double dy = sy[bi + a] - sy[bj + b];
      double dz = sz[bi + a] - sz[bj + b];
      if (dx >= hx || dx <= -hx) dx -= std::nearbyint(dx / edges.x) * edges.x;
      if (dy >= hy || dy <= -hy) dy -= std::nearbyint(dy / edges.y) * edges.y;
      if (dz >= hz || dz <= -hz) dz -= std::nearbyint(dz / edges.z) * edges.z;

      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cutoff2) continue;

      const RadialEval vdw =
          kSingleType
              ? eval(only_view, r2)
              : eval(grid[types[bi + a] * n_types + types[bj + b]], r2);
      double f_over_r;
      if constexpr (kUnitScale) {
        f_over_r = vdw.force_over_r;
        e_vdw_q += fixed::quantize_round(vdw.energy, fixed::kEnergyScale);
      } else {
        f_over_r = vdw.force_over_r * vdw_scale;
        e_vdw_q += fixed::quantize_round(vdw.energy * vdw_scale,
                                         fixed::kEnergyScale);
      }
      if constexpr (kHasElec) {
        double qq = charges[bi + a] * charges[bj + b];
        if constexpr (!kUnitScale) qq *= charge_product_scale;
        if (qq != 0.0) {
          const RadialEval el = eval(elec, r2);
          f_over_r += qq * el.force_over_r;
          e_elec_q +=
              fixed::quantize_round(qq * el.energy, fixed::kEnergyScale);
        }
      }

      const double fx = f_over_r * dx;
      const double fy = f_over_r * dy;
      const double fz = f_over_r * dz;
      const int64_t qx = fixed::quantize_round(fx, fixed::kForceScale);
      const int64_t qy = fixed::quantize_round(fy, fixed::kForceScale);
      const int64_t qz = fixed::quantize_round(fz, fixed::kForceScale);
      fi[a][0] += qx; fi[a][1] += qy; fi[a][2] += qz;
      fj[b][0] -= qx; fj[b][1] -= qy; fj[b][2] -= qz;
      const unsigned s = ((a & 1u) << 2) | b;
      vc[0][s] += dx * fx; vc[1][s] += dx * fy; vc[2][s] += dx * fz;
      vc[3][s] += dy * fx; vc[4][s] += dy * fy; vc[5][s] += dy * fz;
      vc[6][s] += dz * fx; vc[7][s] += dz * fy; vc[8][s] += dz * fz;
    }

    for (unsigned k = 0; k < kClusterJWidth; ++k) {
      // Padded slots (and untouched lanes) carry all-zero quanta.
      if ((fj[k][0] | fj[k][1] | fj[k][2]) != 0) {
        forces.add_quanta(list.atoms[bj + k], {fj[k][0], fj[k][1], fj[k][2]});
      }
    }
  }
  if (!entries.empty()) flush_fi(run_ci);

  Mat3 v;
  for (unsigned k = 0; k < 9; ++k) {
    double t = vc[k][0];
    for (unsigned s = 1; s < kVSub; ++s) t += vc[k][s];
    v.m[k] = t;
  }
  virial += v;
  energy.vdw.add_raw(e_vdw_q);
  energy.coulomb_real.add_raw(e_elec_q);
}

template <unsigned kWidth>
void run_scalar_width(const ClusterPairList& list,
                      std::span<const ClusterPairEntry> entries,
                      std::span<const RadialTableView> grid, size_t n_types,
                      const RadialTableView& elec, bool has_elec, bool unit,
                      bool tight, double cutoff2, const Box& box,
                      FixedForceArray& forces, EnergyBreakdown& energy,
                      Mat3& virial, double vdw_scale,
                      double charge_product_scale) {
  auto run = [&](auto impl) {
    impl(list, entries, grid, n_types, elec, cutoff2, box, forces, energy,
         virial, vdw_scale, charge_product_scale);
  };
  const bool single = n_types == 1;
  if (has_elec) {
    if (unit && tight && single)
      run(cluster_entries_impl<true, true, true, true, kWidth>);
    else if (unit && tight)
      run(cluster_entries_impl<true, true, true, false, kWidth>);
    else if (unit)
      run(cluster_entries_impl<true, true, false, false, kWidth>);
    else if (tight)
      run(cluster_entries_impl<true, false, true, false, kWidth>);
    else
      run(cluster_entries_impl<true, false, false, false, kWidth>);
  } else {
    if (unit && tight && single)
      run(cluster_entries_impl<false, true, true, true, kWidth>);
    else if (unit && tight)
      run(cluster_entries_impl<false, true, true, false, kWidth>);
    else if (unit)
      run(cluster_entries_impl<false, true, false, false, kWidth>);
    else if (tight)
      run(cluster_entries_impl<false, false, true, false, kWidth>);
    else
      run(cluster_entries_impl<false, false, false, false, kWidth>);
  }
}

}  // namespace

void compute_cluster_entries(const ClusterPairList& list,
                             std::span<const ClusterPairEntry> entries,
                             const PairTableSet& tables, const Box& box,
                             FixedForceArray& forces, EnergyBreakdown& energy,
                             Mat3& virial, double vdw_scale,
                             double charge_product_scale) {
  ANTMD_REQUIRE(cluster_width_supported(list.width),
                "unsupported cluster width");
  // ISA dispatch: every SIMD variant is bit-identical to the scalar path,
  // so this only changes speed.  The gather arena gate falls back to
  // scalar when custom tables broke geometry uniformity.
  if (const KernelIsa isa = active_kernel_isa();
      isa != KernelIsa::kScalar && tables.simd_arena().valid) {
    switch (isa) {
#if defined(ANTMD_HAVE_SIMD_SSE41)
      case KernelIsa::kSse41:
        compute_cluster_entries_sse41(list, entries, tables, box, forces,
                                      energy, virial, vdw_scale,
                                      charge_product_scale);
        return;
#endif
#if defined(ANTMD_HAVE_SIMD_AVX2)
      case KernelIsa::kAvx2:
        compute_cluster_entries_avx2(list, entries, tables, box, forces,
                                     energy, virial, vdw_scale,
                                     charge_product_scale);
        return;
#endif
#if defined(ANTMD_HAVE_SIMD_AVX512)
      case KernelIsa::kAvx512:
        compute_cluster_entries_avx512(list, entries, tables, box, forces,
                                       energy, virial, vdw_scale,
                                       charge_product_scale);
        return;
#endif
      default:
        break;  // active ISA not compiled in: scalar handles it
    }
  }
  compute_cluster_entries_scalar(list, entries, tables, box, forces, energy,
                                 virial, vdw_scale, charge_product_scale);
}

void compute_cluster_entries_scalar(
    const ClusterPairList& list, std::span<const ClusterPairEntry> entries,
    const PairTableSet& tables, const Box& box, FixedForceArray& forces,
    EnergyBreakdown& energy, Mat3& virial, double vdw_scale,
    double charge_product_scale) {
  ANTMD_REQUIRE(cluster_width_supported(list.width),
                "unsupported cluster width");
  const double cutoff2 = tables.model().cutoff * tables.model().cutoff;
  const bool has_elec = tables.elec_table().has_value();
  const RadialTableView elec =
      has_elec ? tables.elec_table()->view() : RadialTableView{};

  // Dense type-pair grid of by-value table views: the triangular
  // (bounds-checked) lookup runs once per type pair per call instead of once
  // per interaction, and each lookup in the loop reads the per-bin packed
  // knot layout with no pointer chase through the table object.
  const size_t n_types = tables.type_count();
  std::vector<RadialTableView> grid(n_types * n_types);
  bool tight = !has_elec || elec.s_max >= cutoff2;
  for (uint32_t a = 0; a < n_types; ++a) {
    for (uint32_t b = 0; b < n_types; ++b) {
      grid[a * n_types + b] = tables.vdw_table(a, b).view();
      tight = tight && grid[a * n_types + b].s_max >= cutoff2;
    }
  }
  const bool unit = vdw_scale == 1.0 && charge_product_scale == 1.0;

  if (list.width == kMaxClusterWidth) {
    run_scalar_width<kMaxClusterWidth>(
        list, entries, std::span<const RadialTableView>(grid), n_types, elec,
        has_elec, unit, tight, cutoff2, box, forces, energy, virial, vdw_scale,
        charge_product_scale);
  } else {
    run_scalar_width<kMinClusterWidth>(
        list, entries, std::span<const RadialTableView>(grid), n_types, elec,
        has_elec, unit, tight, cutoff2, box, forces, energy, virial, vdw_scale,
        charge_product_scale);
  }
}

util::ChunkPlan cluster_chunk_plan(const ClusterPairList& list) {
  // The chunk partition is a function of the list alone — never the thread
  // count — and chunk virial partials are reduced in ascending chunk order,
  // so even the double-precision virial is identical at any thread count.
  constexpr size_t kMinChunkEntries = 256;
  constexpr size_t kMaxChunks = 16;
  return util::plan_chunks(list.entries.size(), kMinChunkEntries, kMaxChunks);
}

void prepare_cluster_scratch(const ClusterPairList& list, size_t lanes,
                             size_t n_atoms, const util::ChunkPlan& plan) {
  ClusterEvalScratch& s = list.scratch;
  if (!s.clean) {
    for (auto& lane : s.lane_forces) lane.clear();
  }
  if (s.lane_forces.size() != lanes) s.lane_forces.resize(lanes);
  for (auto& lane : s.lane_forces) {
    if (lane.size() != n_atoms) lane.resize(n_atoms);  // resize zero-fills
  }
  s.chunk_energy.assign(plan.chunks, EnergyBreakdown{});
  s.chunk_virial.assign(plan.chunks, Mat3{});
  s.clean = false;
}

void compute_clusters_chunk(const ClusterPairList& list,
                            const PairTableSet& tables, const Box& box,
                            const util::ChunkPlan& plan, size_t chunk,
                            size_t lane, double vdw_scale,
                            double charge_product_scale) {
  ClusterEvalScratch& s = list.scratch;
  const size_t lo = plan.begin(chunk);
  const std::span<const ClusterPairEntry> entries(list.entries.data() + lo,
                                                  plan.end(chunk) - lo);
  compute_cluster_entries(list, entries, tables, box, s.lane_forces[lane],
                          s.chunk_energy[chunk], s.chunk_virial[chunk],
                          vdw_scale, charge_product_scale);
}

void reduce_cluster_chunks(const ClusterPairList& list,
                           const util::ChunkPlan& plan, ForceResult& out) {
  ClusterEvalScratch& s = list.scratch;
  for (auto& lane : s.lane_forces) lane.drain_into(out.forces);
  for (size_t c = 0; c < plan.chunks; ++c) {
    out.energy.merge(s.chunk_energy[c]);
    out.virial += s.chunk_virial[c];
  }
  s.clean = true;
}

void compute_clusters(const ClusterPairList& list, const PairTableSet& tables,
                      std::span<const Vec3> pos, const Box& box,
                      ForceResult& out, double vdw_scale,
                      double charge_product_scale, ExecutionContext* exec) {
  gather_cluster_coords(list, pos);
  const util::ChunkPlan plan = cluster_chunk_plan(list);
  if (plan.chunks == 0) return;

  const bool fan_out = exec != nullptr && exec->parallel() && plan.chunks > 1;
  const size_t lanes = fan_out ? exec->runtime()->lanes() : 1;
  prepare_cluster_scratch(list, lanes, out.forces.size(), plan);
  if (fan_out) {
    exec->parallel_for(plan.chunks, [&](size_t c) {
      compute_clusters_chunk(list, tables, box, plan, c,
                             util::TaskRuntime::current_lane(), vdw_scale,
                             charge_product_scale);
    });
  } else {
    for (size_t c = 0; c < plan.chunks; ++c) {
      compute_clusters_chunk(list, tables, box, plan, c, 0, vdw_scale,
                             charge_product_scale);
    }
  }
  reduce_cluster_chunks(list, plan, out);
}

}  // namespace antmd::ff
