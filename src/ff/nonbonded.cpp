#include "ff/nonbonded.hpp"

#include <algorithm>
#include <cmath>

#include "math/units.hpp"
#include "util/error.hpp"

namespace antmd::ff {
namespace {

RadialTable make_elec_table(const NonbondedModel& model) {
  const double rc = model.cutoff;
  switch (model.electrostatics) {
    case Electrostatics::kEwaldReal: {
      const double beta = model.ewald_beta;
      auto energy = [beta](double r) {
        return units::kCoulomb * std::erfc(beta * r) / r;
      };
      auto denergy = [beta](double r) {
        double erfc_term = std::erfc(beta * r);
        double gauss = 2.0 * beta / std::sqrt(M_PI) *
                       std::exp(-beta * beta * r * r);
        return -units::kCoulomb * (erfc_term / (r * r) + gauss / r);
      };
      // No shift: erfc makes the kernel smoothly tiny at a well-chosen rc.
      return RadialTable::from_potential(energy, denergy, model.table_inner,
                                         rc, model.table_bins,
                                         /*shift_to_zero=*/false);
    }
    case Electrostatics::kReactionCutoff: {
      auto energy = [rc](double r) {
        return units::kCoulomb * (1.0 / r - 1.0 / rc);
      };
      auto denergy = [](double r) { return -units::kCoulomb / (r * r); };
      return RadialTable::from_potential(energy, denergy, model.table_inner,
                                         rc, model.table_bins, false);
    }
    case Electrostatics::kNone:
      break;
  }
  ANTMD_REQUIRE(false, "no electrostatic table for this model");
  // Unreachable.
  return RadialTable::from_potential([](double) { return 0.0; },
                                     [](double) { return 0.0; }, 0.5, 1.0, 8);
}

}  // namespace

RadialTable make_lj_table(double sigma, double epsilon,
                          const NonbondedModel& model) {
  if (epsilon == 0.0 || sigma == 0.0) {
    // A genuinely zero interaction: flat zero table.  Built with the
    // model's bin count — not a token few — so its geometry matches every
    // other table and keeps the SIMD gather arena uniform (a zero table
    // evaluates to ±0 identically at any bin count, so this is bit-neutral
    // for the scalar kernels too).
    return RadialTable::from_potential([](double) { return 0.0; },
                                       [](double) { return 0.0; },
                                       model.table_inner, model.cutoff,
                                       model.table_bins, false);
  }
  auto energy = [sigma, epsilon](double r) {
    double s6 = std::pow(sigma / r, 6);
    return 4.0 * epsilon * (s6 * s6 - s6);
  };
  auto denergy = [sigma, epsilon](double r) {
    double s6 = std::pow(sigma / r, 6);
    return 4.0 * epsilon * (-12.0 * s6 * s6 + 6.0 * s6) / r;
  };
  return RadialTable::from_potential(energy, denergy, model.table_inner,
                                     model.cutoff, model.table_bins, true);
}

RadialTable make_softcore_lj_table(double sigma, double epsilon, double lambda,
                                   double alpha, const NonbondedModel& model) {
  ANTMD_REQUIRE(lambda >= 0.0 && lambda <= 1.0, "lambda must be in [0, 1]");
  ANTMD_REQUIRE(sigma > 0.0, "soft-core needs a positive sigma");
  const double gap = alpha * (1.0 - lambda);
  auto energy = [=](double r) {
    double s = std::pow(r / sigma, 6);
    double d = gap + s;
    return 4.0 * epsilon * lambda * (1.0 / (d * d) - 1.0 / d);
  };
  auto denergy = [=](double r) {
    double s = std::pow(r / sigma, 6);
    double d = gap + s;
    double du_ds = 4.0 * epsilon * lambda * (-2.0 / (d * d * d) +
                                             1.0 / (d * d));
    double ds_dr = 6.0 * s / r;
    return du_ds * ds_dr;
  };
  return RadialTable::from_potential(energy, denergy, model.table_inner,
                                     model.cutoff, model.table_bins, true);
}

PairTableSet::PairTableSet(const Topology& topo, const NonbondedModel& model)
    : model_(model), n_types_(topo.type_count()) {
  ANTMD_REQUIRE(n_types_ > 0, "topology has no atom types");
  const size_t n_pairs = n_types_ * (n_types_ + 1) / 2;
  vdw_tables_.reserve(n_pairs);
  custom_.assign(n_pairs, false);
  for (uint32_t a = 0; a < n_types_; ++a) {
    for (uint32_t b = a; b < n_types_; ++b) {
      // Lorentz–Berthelot combination.
      const LjType& ta = topo.types()[a];
      const LjType& tb = topo.types()[b];
      double sigma = 0.5 * (ta.sigma + tb.sigma);
      double epsilon = std::sqrt(ta.epsilon * tb.epsilon);
      vdw_tables_.push_back(make_lj_table(sigma, epsilon, model));
    }
  }
  if (model.electrostatics != Electrostatics::kNone) {
    elec_table_ = make_elec_table(model);
  }
  rebuild_simd_arena();
}

void PairTableSet::rebuild_simd_arena() {
  arena_ = SimdTableArena{};
  const RadialTableView ref = vdw_tables_.front().view();
  for (const RadialTable& t : vdw_tables_) {
    const RadialTableView v = t.view();
    if (v.s_min != ref.s_min || v.s_max != ref.s_max ||
        v.inv_ds != ref.inv_ds || v.ds != ref.ds || v.last != ref.last) {
      return;  // non-uniform geometry: SIMD dispatch falls back to scalar
    }
  }
  const size_t stride = 8 * (ref.last + 1);
  const size_t total = n_types_ * n_types_ * stride;
  // Gather offsets are int32 lane values; leave generous headroom.
  if (total > (size_t{1} << 30)) return;
  arena_.s_min = ref.s_min;
  arena_.s_max = ref.s_max;
  arena_.inv_ds = ref.inv_ds;
  arena_.ds = ref.ds;
  arena_.last = ref.last;
  arena_.stride = stride;
  arena_.data.resize(total);
  for (uint32_t a = 0; a < n_types_; ++a) {
    for (uint32_t b = 0; b < n_types_; ++b) {
      const RadialTableView v = vdw_tables_[index(a, b)].view();
      std::copy_n(v.packed, stride,
                  arena_.data.data() + (a * n_types_ + b) * stride);
    }
  }
  arena_.valid = true;
}

size_t PairTableSet::index(uint32_t a, uint32_t b) const {
  ANTMD_REQUIRE(a < n_types_ && b < n_types_, "type id out of range");
  if (a > b) std::swap(a, b);
  // Triangular index for a <= b.
  return a * n_types_ - a * (a + 1) / 2 + b;
}

void PairTableSet::set_custom_table(uint32_t type_a, uint32_t type_b,
                                    RadialTable table) {
  size_t idx = index(type_a, type_b);
  vdw_tables_[idx] = std::move(table);
  custom_[idx] = true;
  rebuild_simd_arena();
}

bool PairTableSet::is_custom(uint32_t type_a, uint32_t type_b) const {
  return custom_[index(type_a, type_b)];
}

const RadialTable& PairTableSet::vdw_table(uint32_t type_a,
                                           uint32_t type_b) const {
  return vdw_tables_[index(type_a, type_b)];
}

void compute_pairs(std::span<const PairEntry> pairs,
                   const PairTableSet& tables,
                   std::span<const uint32_t> type_ids,
                   std::span<const double> charges, std::span<const Vec3> pos,
                   const Box& box, ForceResult& out, double vdw_scale,
                   double charge_product_scale) {
  const double cutoff2 = tables.model().cutoff * tables.model().cutoff;
  const bool has_elec = tables.elec_table().has_value();
  for (const PairEntry& p : pairs) {
    Vec3 d = box.min_image(pos[p.i], pos[p.j]);
    double r2 = norm2(d);
    if (r2 >= cutoff2) continue;

    RadialEval vdw = tables.vdw_table(type_ids[p.i], type_ids[p.j])
                         .evaluate(r2);
    double f_over_r = vdw.force_over_r * vdw_scale;
    double e_vdw = vdw.energy * vdw_scale;
    double e_elec = 0.0;
    if (has_elec) {
      double qq = charges[p.i] * charges[p.j] * charge_product_scale;
      if (qq != 0.0) {
        RadialEval elec = tables.elec_table()->evaluate(r2);
        f_over_r += qq * elec.force_over_r;
        e_elec = qq * elec.energy;
      }
    }
    Vec3 f = f_over_r * d;
    out.forces.add_pair(p.i, p.j, f);
    out.energy.vdw.add(e_vdw);
    out.energy.coulomb_real.add(e_elec);
    out.virial += outer(d, f);
  }
}

void compute_pairs14(std::span<const Pair14> pairs, const PairTableSet& tables,
                     std::span<const uint32_t> type_ids,
                     std::span<const double> charges,
                     std::span<const Vec3> pos, const Box& box,
                     ForceResult& out) {
  for (const Pair14& p : pairs) {
    Vec3 d = box.min_image(pos[p.i], pos[p.j]);
    double r2 = norm2(d);
    double r = std::sqrt(r2);

    RadialEval vdw = tables.vdw_table(type_ids[p.i], type_ids[p.j])
                         .evaluate(r2);
    double f_over_r = vdw.force_over_r * p.lj_scale;
    double energy = vdw.energy * p.lj_scale;

    // Plain (full) Coulomb for the 1-4 pair, scaled. The Ewald machinery
    // never sees excluded pairs (the exclusion correction removes its
    // reciprocal-space contribution), so the bare kernel is correct here.
    double qq = charges[p.i] * charges[p.j] * p.coulomb_scale;
    if (qq != 0.0) {
      energy += units::kCoulomb * qq / r;
      f_over_r += units::kCoulomb * qq / (r2 * r);
    }

    Vec3 f = f_over_r * d;
    out.forces.add_pair(p.i, p.j, f);
    out.energy.pair14.add(energy);
    out.virial += outer(d, f);
  }
}

}  // namespace antmd::ff
