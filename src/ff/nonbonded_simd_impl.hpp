// Width-generic integer-SIMD tile loop, instantiated once per ISA by the
// nonbonded_simd_{sse41,avx2,avx512}.cpp TUs with their Traits class (see
// math/simd.hpp).  This header must only be included from a TU compiled
// with the matching -m flags *and* -ffp-contract=off.
//
// The kernel is a lane-for-lane transcription of the scalar tile loop in
// nonbonded_cluster.cpp, engineered so every fixed-point quantum and every
// virial bit matches the scalar kernel exactly:
//
//   - each double op is one IEEE instruction on the same operands, in the
//     scalar kernel's association order (no FMA: contraction is off);
//   - branches become blends chosen so untaken paths cannot perturb a
//     lane: `d - 0.0` (min-image fast path), `x * 1.0` (unit scales) and
//     clamp-to-last-bin are all bitwise identities, so applying them
//     unconditionally equals the scalar kernel's conditional skips — while
//     signed-zero-sensitive updates (virial adds, the qq != 0 force term)
//     blend the *previous* value back in rather than adding a masked-off
//     zero, which could flip -0.0 to +0.0;
//   - integer force/energy quanta of masked-off lanes are zeroed by an
//     AND, and adding integer zero is exact;
//   - table lookups clamp the bin index *before* the int conversion
//     (min-then-truncate equals the scalar truncate-then-clamp for every
//     non-negative u, and keeps dead-lane gathers inside the arena);
//   - the virial uses the canonical 8-sub-accumulator grouping
//     s = (row parity)*4 + column: lane (block, l) maps to exactly one s,
//     and buckets are merged in ascending s — the same summation tree as
//     the scalar kernel at every lane width;
//   - quantize-round vectorizes as nearbyint plus an exact ±1.0 tie fixup
//     before a truncating int64 conversion whose overflow behaviour
//     (0x8000...) matches the scalar static_cast on x86-64.
//
// Dead lanes (mask-off, out of cutoff, padded slots) may compute garbage —
// even inf/NaN from extrapolated table weights — but every accumulator
// update is masked, so garbage never lands anywhere.
#pragma once

#include <cstdint>
#include <span>

#include "ff/nonbonded.hpp"
#include "ff/nonbonded_cluster.hpp"
#include "math/fixed.hpp"
#include "math/spline.hpp"

namespace antmd::ff::simd_detail {

/// fixed::quantize_round over a vector: t = v*scale, round-to-nearest-even,
/// then push exact .5 ties away from zero (the scalar kernel's llround
/// semantics).  Ties only exist for |t| < 2^52, where the ±1.0 adjustment
/// is exact.
template <typename T>
inline typename T::VI quantize_round(typename T::VD v,
                                     typename T::VD scale) {
  using VD = typename T::VD;
  using Mask = typename T::Mask;
  const VD zero = T::zero();
  const VD one = T::bcast(1.0);
  const VD t = T::mul(v, scale);
  const VD r = T::round_cur(t);
  const VD d = T::sub(t, r);
  const Mask up = T::mask_and(T::cmp_eq(d, T::bcast(0.5)),
                              T::cmp_gt(t, zero));
  const Mask dn = T::mask_and(T::cmp_eq(d, T::bcast(-0.5)),
                              T::cmp_lt(t, zero));
  const VD adj = T::sub(T::blend(zero, one, up), T::blend(zero, one, dn));
  return T::cvtt_i64(T::add(r, adj));
}

template <typename T, bool kHasElec>
void cluster_entries_simd(const ClusterPairList& list,
                          std::span<const ClusterPairEntry> entries,
                          const SimdTableArena& arena, size_t n_types,
                          const RadialTableView& elec, double cutoff2,
                          const Box& box, FixedForceArray& forces,
                          EnergyBreakdown& energy, Mat3& virial,
                          double vdw_scale, double charge_product_scale) {
  using VD = typename T::VD;
  using VI = typename T::VI;
  using Idx = typename T::Idx;
  using Mask = typename T::Mask;
  // Column chunks per tile row and virial buckets per component.
  constexpr unsigned kCC = kClusterJWidth / T::kCols;
  constexpr unsigned kBuckets = (2 * kClusterJWidth) / T::kLanes;
  static_assert(kCC * T::kCols == kClusterJWidth);
  static_assert(kBuckets * T::kLanes == 2 * kClusterJWidth);
  const unsigned width = list.width;

  const double* sx = list.sx.data();
  const double* sy = list.sy.data();
  const double* sz = list.sz.data();
  const uint32_t* types = list.slot_types.data();
  const double* charges = list.slot_charges.data();
  const Vec3 edges = box.edges();
  const double hx = 0.5 * edges.x;
  const double hy = 0.5 * edges.y;
  const double hz = 0.5 * edges.z;

  const VD zero = T::zero();
  const VD one = T::bcast(1.0);
  const VD two = T::bcast(2.0);
  const VD mtwo = T::bcast(-2.0);
  const VD three = T::bcast(3.0);
  const VD hxv = T::bcast(hx), mhxv = T::bcast(-hx), exv = T::bcast(edges.x);
  const VD hyv = T::bcast(hy), mhyv = T::bcast(-hy), eyv = T::bcast(edges.y);
  const VD hzv = T::bcast(hz), mhzv = T::bcast(-hz), ezv = T::bcast(edges.z);
  const VD cut2v = T::bcast(cutoff2);
  const VD vscalev = T::bcast(vdw_scale);
  const VD cpsv = T::bcast(charge_product_scale);
  const VD fscalev = T::bcast(fixed::kForceScale);
  const VD escalev = T::bcast(fixed::kEnergyScale);

  // VDW tables: shared geometry, per-type-pair slabs in the gather arena.
  const double* vbase = arena.data.data();
  const VD v_smin = T::bcast(arena.s_min);
  const VD v_smax = T::bcast(arena.s_max);
  const VD v_invds = T::bcast(arena.inv_ds);
  const VD v_ds = T::bcast(arena.ds);
  const VD v_last = T::bcast(static_cast<double>(arena.last));
  const Idx stridev = T::idx_bcast(static_cast<int32_t>(arena.stride));
  const Idx eightv = T::idx_bcast(8);
  const int32_t ntypes32 = static_cast<int32_t>(n_types);

  // Electrostatic table: single table, own geometry, direct gather base.
  const double* ebase = elec.packed;
  const VD e_smin = T::bcast(elec.s_min);
  const VD e_smax = T::bcast(elec.s_max);
  const VD e_invds = T::bcast(elec.inv_ds);
  const VD e_ds = T::bcast(elec.ds);
  const VD e_last = T::bcast(static_cast<double>(elec.last));

  VI acc_ev = T::zero_i64();
  VI acc_ee = T::zero_i64();
  VD vacc[9][kBuckets];
  for (auto& comp : vacc)
    for (auto& b : comp) b = zero;

  alignas(64) int64_t lanes_i64[T::kLanes];
  alignas(64) double lanes_pd[T::kLanes];

  int64_t fi[kMaxClusterWidth][3] = {};
  uint32_t run_ci = entries.empty() ? 0u : entries.front().ci;
  auto flush_fi = [&](uint32_t ci) {
    const size_t b = static_cast<size_t>(ci) * width;
    for (unsigned k = 0; k < width; ++k) {
      if ((fi[k][0] | fi[k][1] | fi[k][2]) != 0) {
        forces.add_quanta(list.atoms[b + k], {fi[k][0], fi[k][1], fi[k][2]});
        fi[k][0] = 0; fi[k][1] = 0; fi[k][2] = 0;
      }
    }
  };

  // Exact minimum image, vectorized: the correction is computed for every
  // lane but blended against +0.0 outside the wrap branch, and d - 0.0 is
  // a bitwise identity (also for d == -0.0).
  auto min_image = [&](VD d, VD hv, VD mhv, VD ev) {
    const Mask m = T::mask_or(T::cmp_ge(d, hv), T::cmp_le(d, mhv));
    // No lane wraps (the common case for an interior tile): d - 0.0 is a
    // bitwise identity, so skipping the divide is exact.
    if (!T::mask_any(m)) return d;
    const VD corr = T::mul(T::round_cur(T::div(d, ev)), ev);
    return T::sub(d, T::blend(zero, corr, m));
  };
  // Hermite evaluation against geometry (smin, invds, lastv): bin index and
  // the four basis weights, ds pre-folded into h10/h11 as in the scalar
  // dot-product order h00*p0 + (h10*ds)*p1 + h01*p4 + (h11*ds)*p5.
  struct Basis { Idx bin; VD h00, h10ds, h01, h11ds; };
  auto basis = [&](VD r2, VD sminv, VD invdsv, VD lastv, VD dsv) {
    const VD s = T::max(r2, sminv);
    const VD u = T::mul(T::sub(s, sminv), invdsv);
    const Idx bin = T::idx_cvtt(T::min(u, lastv));
    const VD tloc = T::sub(u, T::idx_to_pd(bin));
    const VD t2 = T::mul(tloc, tloc);
    const VD t3 = T::mul(t2, tloc);
    const VD h00 = T::add(T::sub(T::mul(two, t3), T::mul(three, t2)), one);
    const VD h10 = T::add(T::sub(t3, T::mul(two, t2)), tloc);
    const VD h01 = T::add(T::mul(mtwo, t3), T::mul(three, t2));
    const VD h11 = T::sub(t3, t2);
    return Basis{bin, h00, T::mul(h10, dsv), h01, T::mul(h11, dsv)};
  };
  auto dot4 = [&](const Basis& w, VD p0, VD p1, VD p4, VD p5) {
    return T::add(T::add(T::add(T::mul(w.h00, p0), T::mul(w.h10ds, p1)),
                         T::mul(w.h01, p4)),
                  T::mul(w.h11ds, p5));
  };

  for (const ClusterPairEntry& e : entries) {
    if (e.ci != run_ci) {
      flush_fi(run_ci);
      run_ci = e.ci;
    }
    const size_t bi = static_cast<size_t>(e.ci) * width;
    const size_t bj = static_cast<size_t>(e.cj) * kClusterJWidth;
    const auto em = static_cast<uint32_t>(e.mask);

    // j-side statics, loaded once per tile.
    VD xj[kCC], yj[kCC], zj[kCC], qj[kCC];
    Idx tj[kCC];
    VI fjx[kCC], fjy[kCC], fjz[kCC];
    for (unsigned cc = 0; cc < kCC; ++cc) {
      const unsigned c0 = cc * T::kCols;
      xj[cc] = T::load_cols(sx + bj, c0);
      yj[cc] = T::load_cols(sy + bj, c0);
      zj[cc] = T::load_cols(sz + bj, c0);
      tj[cc] = T::idx_load_cols(types + bj, c0);
      qj[cc] = kHasElec ? T::load_cols(charges + bj, c0) : zero;
      fjx[cc] = T::zero_i64();
      fjy[cc] = T::zero_i64();
      fjz[cc] = T::zero_i64();
    }

    for (unsigned a = 0; a < width; a += T::kRows) {
      constexpr uint32_t kRowMask = (uint32_t{1} << (4 * T::kRows)) - 1;
      const uint32_t rowbits = (em >> (4 * a)) & kRowMask;
      if (rowbits == 0) continue;  // the row-skipping that streamed_fill
                                   // ratio accounts for
      const unsigned a1 = a + (T::kRows - 1);
      const VD xi = T::bcast_rows(sx[bi + a], sx[bi + a1]);
      const VD yi = T::bcast_rows(sy[bi + a], sy[bi + a1]);
      const VD zi = T::bcast_rows(sz[bi + a], sz[bi + a1]);
      const Idx tpb = T::idx_bcast_rows(
          static_cast<int32_t>(types[bi + a]) * ntypes32,
          static_cast<int32_t>(types[bi + a1]) * ntypes32);
      const VD qi = kHasElec ? T::bcast_rows(charges[bi + a], charges[bi + a1])
                             : zero;

      for (unsigned cc = 0; cc < kCC; ++cc) {
        constexpr uint32_t kBlockMask = (uint32_t{1} << T::kLanes) - 1;
        const uint32_t bits = (rowbits >> (cc * T::kCols)) & kBlockMask;
        if (bits == 0) continue;
        const Mask tm = T::mask_from_bits(bits);

        const VD dx = min_image(T::sub(xi, xj[cc]), hxv, mhxv, exv);
        const VD dy = min_image(T::sub(yi, yj[cc]), hyv, mhyv, eyv);
        const VD dz = min_image(T::sub(zi, zj[cc]), hzv, mhzv, ezv);
        const VD r2 = T::add(T::add(T::mul(dx, dx), T::mul(dy, dy)),
                             T::mul(dz, dz));
        const Mask active = T::mask_and(tm, T::cmp_lt(r2, cut2v));
        if (!T::mask_any(active)) continue;

        // VDW: each lane's (type pair, bin) selects 8 contiguous arena
        // doubles; load + transpose them in-register instead of gathering.
        const Basis w = basis(r2, v_smin, v_invds, v_last, v_ds);
        const Idx tp = T::idx_add(tpb, tj[cc]);
        const Idx g = T::idx_add(T::idx_mul(tp, stridev),
                                 T::idx_mul(w.bin, eightv));
        VD pv[8];
        T::load_packed8(vbase, g, pv);
        VD ve = dot4(w, pv[0], pv[1], pv[4], pv[5]);
        VD vf = dot4(w, pv[2], pv[3], pv[6], pv[7]);
        // evaluate_view's out-of-range guard; never fires for tight tables,
        // exactly like the scalar kernel's skipped branch.
        const Mask invdw = T::cmp_lt(r2, v_smax);
        ve = T::blend(zero, ve, invdw);
        vf = T::blend(zero, vf, invdw);
        VD f_over_r = T::mul(vf, vscalev);
        acc_ev = T::add_i64(
            acc_ev, T::and_mask_i64(
                        quantize_round<T>(T::mul(ve, vscalev), escalev),
                        active));

        if constexpr (kHasElec) {
          const VD qq = T::mul(T::mul(qi, qj[cc]), cpsv);
          const Mask qnz = T::cmp_ne(qq, zero);
          const Basis we = basis(r2, e_smin, e_invds, e_last, e_ds);
          const Idx ge = T::idx_mul(we.bin, eightv);
          VD pe[8];
          T::load_packed8(ebase, ge, pe);
          VD ee = dot4(we, pe[0], pe[1], pe[4], pe[5]);
          VD ef = dot4(we, pe[2], pe[3], pe[6], pe[7]);
          const Mask inel = T::cmp_lt(r2, e_smax);
          ee = T::blend(zero, ee, inel);
          ef = T::blend(zero, ef, inel);
          // Scalar adds the elec term only when qq != 0; the masked add
          // keeps the old sum for qq == 0 lanes (adding a zero could flip
          // -0.0).
          f_over_r = T::add_masked(f_over_r, T::mul(qq, ef), qnz);
          acc_ee = T::add_i64(
              acc_ee,
              T::and_mask_i64(quantize_round<T>(T::mul(qq, ee), escalev),
                              T::mask_and(qnz, active)));
        }

        const VD fx = T::mul(f_over_r, dx);
        const VD fy = T::mul(f_over_r, dy);
        const VD fz = T::mul(f_over_r, dz);
        const VI qx = T::and_mask_i64(quantize_round<T>(fx, fscalev), active);
        const VI qy = T::and_mask_i64(quantize_round<T>(fy, fscalev), active);
        const VI qz = T::and_mask_i64(quantize_round<T>(fz, fscalev), active);
        fjx[cc] = T::sub_i64(fjx[cc], qx);
        fjy[cc] = T::sub_i64(fjy[cc], qy);
        fjz[cc] = T::sub_i64(fjz[cc], qz);
        // i-side: horizontal per-row sums (integer, order-free).
        const auto spill_fi = [&](VI q, unsigned comp) {
          int64_t rs[T::kRows];
          T::row_sums_i64(q, rs);
          for (unsigned r = 0; r < T::kRows; ++r) fi[a + r][comp] += rs[r];
        };
        spill_fi(qx, 0);
        spill_fi(qy, 1);
        spill_fi(qz, 2);

        // Virial, canonical grouping: this block's lanes land in bucket
        // (row parity)*kCC + cc, lane l == its column within the bucket.
        const unsigned bucket =
            (T::kRows == 2) ? 0u : ((a & 1u) * kCC + cc);
        const auto vadd = [&](unsigned k, VD c) {
          vacc[k][bucket] = T::add_masked(vacc[k][bucket], c, active);
        };
        vadd(0, T::mul(dx, fx)); vadd(1, T::mul(dx, fy));
        vadd(2, T::mul(dx, fz)); vadd(3, T::mul(dy, fx));
        vadd(4, T::mul(dy, fy)); vadd(5, T::mul(dy, fz));
        vadd(6, T::mul(dz, fx)); vadd(7, T::mul(dz, fy));
        vadd(8, T::mul(dz, fz));
      }
    }

    // j-side scatter, one store per touched slot (as in the scalar loop).
    int64_t fjq[kClusterJWidth][3] = {};
    for (unsigned cc = 0; cc < kCC; ++cc) {
      const auto spill_fj = [&](VI q, unsigned comp) {
        T::store_i64(lanes_i64, q);
        for (unsigned l = 0; l < T::kLanes; ++l) {
          fjq[cc * T::kCols + l % T::kCols][comp] += lanes_i64[l];
        }
      };
      spill_fj(fjx[cc], 0);
      spill_fj(fjy[cc], 1);
      spill_fj(fjz[cc], 2);
    }
    for (unsigned k = 0; k < kClusterJWidth; ++k) {
      if ((fjq[k][0] | fjq[k][1] | fjq[k][2]) != 0) {
        forces.add_quanta(list.atoms[bj + k],
                          {fjq[k][0], fjq[k][1], fjq[k][2]});
      }
    }
  }
  if (!entries.empty()) flush_fi(run_ci);

  // Merge in ascending s = bucket * kLanes + lane: the scalar kernel's
  // exact reduction tree.
  Mat3 v;
  for (unsigned k = 0; k < 9; ++k) {
    double t = 0.0;
    bool first = true;
    for (unsigned b = 0; b < kBuckets; ++b) {
      T::store(lanes_pd, vacc[k][b]);
      for (unsigned l = 0; l < T::kLanes; ++l) {
        if (first) {
          t = lanes_pd[l];
          first = false;
        } else {
          t += lanes_pd[l];
        }
      }
    }
    v.m[k] = t;
  }
  virial += v;

  int64_t e_vdw_q = 0;
  int64_t e_elec_q = 0;
  T::store_i64(lanes_i64, acc_ev);
  for (unsigned l = 0; l < T::kLanes; ++l) e_vdw_q += lanes_i64[l];
  T::store_i64(lanes_i64, acc_ee);
  for (unsigned l = 0; l < T::kLanes; ++l) e_elec_q += lanes_i64[l];
  energy.vdw.add_raw(e_vdw_q);
  energy.coulomb_real.add_raw(e_elec_q);
}

/// Shared per-TU entry: resolves has_elec at runtime into the two template
/// instantiations (the only specialization axis the SIMD kernels need —
/// unit scales and tight tables are bitwise no-op identities here).
template <typename T>
void run_cluster_entries_simd(const ClusterPairList& list,
                              std::span<const ClusterPairEntry> entries,
                              const PairTableSet& tables, const Box& box,
                              FixedForceArray& forces,
                              EnergyBreakdown& energy, Mat3& virial,
                              double vdw_scale, double charge_product_scale) {
  const SimdTableArena& arena = tables.simd_arena();
  const double cutoff2 = tables.model().cutoff * tables.model().cutoff;
  const bool has_elec = tables.elec_table().has_value();
  const RadialTableView elec =
      has_elec ? tables.elec_table()->view() : RadialTableView{};
  if (has_elec) {
    cluster_entries_simd<T, true>(list, entries, arena, tables.type_count(),
                                  elec, cutoff2, box, forces, energy, virial,
                                  vdw_scale, charge_product_scale);
  } else {
    cluster_entries_simd<T, false>(list, entries, arena, tables.type_count(),
                                   elec, cutoff2, box, forces, energy, virial,
                                   vdw_scale, charge_product_scale);
  }
}

}  // namespace antmd::ff::simd_detail
