// AVX-512 cluster kernel TU (F for 8-lane doubles and 32-bit gathers, DQ
// for the direct packed double→int64 conversion).  Compiled with
// -mavx512f -mavx512dq -ffp-contract=off; see nonbonded_simd_impl.hpp for
// the exactness contract.
#include "ff/nonbonded_simd.hpp"
#include "ff/nonbonded_simd_impl.hpp"
#include "math/simd.hpp"

namespace antmd::ff {

void compute_cluster_entries_avx512(const ClusterPairList& list,
                                    std::span<const ClusterPairEntry> entries,
                                    const PairTableSet& tables, const Box& box,
                                    FixedForceArray& forces,
                                    EnergyBreakdown& energy, Mat3& virial,
                                    double vdw_scale,
                                    double charge_product_scale) {
  simd_detail::run_cluster_entries_simd<simd::Avx512Traits>(
      list, entries, tables, box, forces, energy, virial, vdw_scale,
      charge_product_scale);
}

}  // namespace antmd::ff
