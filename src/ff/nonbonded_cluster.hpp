// Blocked cluster-pair nonbonded kernel (the GROMACS NxM shape mapped onto
// antmd's deterministic fixed-point contract).
//
// The flat pair list streams one (i, j) entry per interaction; the cluster
// list regroups *exactly the same pair set* into width×4 tiles (the GROMACS
// N×M split: i-clusters of `width` atoms — 4 or 8 at runtime — against
// fixed 4-atom j-groups): atoms are ordered by a fine spatial grid, chunked
// into clusters of `width`, and every surviving flat pair becomes one bit
// in the interaction mask of its (cluster_i, j_group) tile.  Keeping the j
// side at 4 slots means an empty half of a wide tile is simply never
// emitted, so widening the i side does not dilute the mask fill.  The
// kernel gathers coordinates and per-atom parameters once per cluster
// (SoA), walks the mask bits, and accumulates forces/energies through the
// same quantize-once fixed-point path as ff::compute_pairs — so the two
// kernels are bit-identical in every fixed-point sum, and the tile
// structure only changes memory traffic and per-pair overhead, not physics.
//
// Determinism contract (mirrors util::ExecutionContext):
//   - forces and energies are integer sums → independent of tile order,
//     chunking and thread count, and bit-identical to the flat kernel;
//   - the double-precision virial is accumulated in 8 sub-accumulators
//     indexed s = (row parity)*4 + column, merged in ascending s at the end
//     of each entry span.  That grouping is exactly the lane structure a
//     SIMD evaluator has — 4 lanes cover one tile row (lane b == column b),
//     8 lanes cover an even/odd row pair — so scalar and vector kernels
//     produce the *same bits* for the virial too;
//   - the virial is additionally summed per fixed-size entry chunk and the
//     chunk partials are reduced in ascending chunk order, so it is
//     bit-identical across thread counts (chunk boundaries depend only on
//     the list, never on the thread count).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ff/energy.hpp"
#include "ff/nonbonded.hpp"
#include "math/pbc.hpp"
#include "util/execution.hpp"

namespace antmd::ff {

/// Kernel selector for the real-space nonbonded hot path.
enum class NonbondedKernel {
  kPair,     ///< flat pair-by-pair loop (reference implementation)
  kCluster,  ///< blocked 4x4 cluster-pair tiles (default)
};

/// Parses "pair" / "cluster"; throws ConfigError on anything else.
[[nodiscard]] NonbondedKernel parse_nonbonded_kernel(const std::string& name);
[[nodiscard]] const char* to_string(NonbondedKernel kernel);

/// Supported i-cluster widths (one tile covers width × kClusterJWidth
/// candidate pairs).  Width 4 is the narrow legacy shape; width 8 doubles
/// the i-side reuse for SIMD row streaming and is the default.
inline constexpr uint32_t kMinClusterWidth = 4;
inline constexpr uint32_t kMaxClusterWidth = 8;
inline constexpr uint32_t kDefaultClusterWidth = 8;

/// J-side tile width: always 4 slots.  Tile entries key on 4-slot j-groups
/// (two per 8-atom cluster), so the mask layout — bit a*4+b — is the same
/// at every i-width and empty tile halves are never streamed.
inline constexpr uint32_t kClusterJWidth = 4;

/// True for the widths the kernels are compiled for.
[[nodiscard]] constexpr bool cluster_width_supported(uint32_t width) {
  return width == kMinClusterWidth || width == kMaxClusterWidth;
}

/// Slot sentinel for the ragged last cluster.
inline constexpr uint32_t kPadAtom = 0xffffffffu;

/// Persistent evaluation partials for one cluster list, reused across
/// steps.  Forces accumulate into lane-private fixed-point arrays (indexed
/// by util::TaskRuntime::current_lane()) that stay allocated — and zeroed,
/// via FixedForceArray::drain_into in the reduction — between evaluations,
/// so the per-call cost is the fold itself, not an O(lanes × atoms) clear.
/// Energy and virial partials are per *chunk* (not per lane) because the
/// double-precision virial's summation grouping must be a function of the
/// list alone; reduce_cluster_chunks merges them in ascending chunk order.
struct ClusterEvalScratch {
  std::vector<FixedForceArray> lane_forces;
  std::vector<EnergyBreakdown> chunk_energy;
  std::vector<Mat3> chunk_virial;
  /// False while an evaluation is in flight; a dirty prepare re-clears the
  /// lane arrays (only happens after an exception unwound an evaluation).
  bool clean = true;
};

/// One i-cluster × j-group tile.  `ci` indexes width-slot i-clusters,
/// `cj` indexes 4-slot j-groups (cj*kClusterJWidth is its slot base).  Bit
/// (a*kClusterJWidth + b) of `mask` is set when slot a of cluster ci
/// interacts with slot b of group cj; the mask encodes exactly the flat
/// list's pair set (in reach at build time, exclusions removed, each
/// unordered pair exactly once, i-side slot < j-side slot), never padding.
struct ClusterPairEntry {
  uint32_t ci = 0;
  uint32_t cj = 0;    ///< ci's slot base never exceeds cj's last slot
  uint64_t mask = 0;  ///< 16 bits used at width 4, 32 at width 8
  /// Periodic shift of cj's cell relative to ci's at build time, encoded as
  /// (sx+1) + 3*(sy+1) + 9*(sz+1) with s ∈ {-1,0,1} (13 = no wrap).  This is
  /// what the hardware import machinery would key on; the software kernel
  /// stays exact under arbitrary drift by re-deriving the minimum image per
  /// pair (with a half-box fast path), so the index is advisory: modeled
  /// import accounting and diagnostics only.
  uint16_t shift = 13;
};

/// The blocked list: SoA per-slot static data plus the tile entries.
/// Built by md::NeighborList from its flat pair vector (see
/// NeighborList::clusters()); consumed by compute_clusters().
struct ClusterPairList {
  /// Atoms per cluster: 4 or 8 (see cluster_width_supported).
  uint32_t width = kDefaultClusterWidth;
  /// Slot -> global atom id, kPadAtom in padded slots; size is
  /// cluster_count() * width.
  std::vector<uint32_t> atoms;
  std::vector<uint32_t> slot_types;   ///< padded slots hold 0
  std::vector<double> slot_charges;   ///< padded slots hold 0.0
  std::vector<ClusterPairEntry> entries;  ///< sorted by (ci, cj)
  size_t real_pairs = 0;  ///< total mask popcount == flat pair count
  size_t active_rows = 0;  ///< tile rows with at least one mask bit set

  [[nodiscard]] size_t cluster_count() const {
    return atoms.size() / width;
  }
  /// Pipeline lanes a width×4-tile evaluator streams (incl. masked-off
  /// ones).
  [[nodiscard]] size_t lane_count() const {
    return entries.size() * width * kClusterJWidth;
  }
  /// Useful-work fraction of all tile lanes (telemetry gauge).
  [[nodiscard]] double fill_ratio() const {
    size_t lanes = lane_count();
    return lanes ? static_cast<double>(real_pairs) /
                       static_cast<double>(lanes)
                 : 0.0;
  }
  /// Useful-work fraction of the lanes a row-skipping evaluator actually
  /// streams (the SIMD kernels stream kClusterJWidth lanes per active row
  /// and skip all-zero rows entirely).
  [[nodiscard]] double streamed_fill_ratio() const {
    return active_rows ? static_cast<double>(real_pairs) /
                             static_cast<double>(active_rows * kClusterJWidth)
                       : 0.0;
  }

  // Kernel scratch, reused across steps.  Mutable because force evaluation
  // is logically const on the list; a list serves one kernel call at a time
  // (same single-writer discipline as the rest of the simulation).
  mutable std::vector<double> sx, sy, sz;  ///< gathered coordinates
  mutable ClusterEvalScratch scratch;      ///< persistent eval partials
};

/// Gathers `pos` into the list's SoA coordinate scratch (cluster order).
/// Must run after every position change and before compute_cluster_entries;
/// compute_clusters() calls it itself.
void gather_cluster_coords(const ClusterPairList& list,
                           std::span<const Vec3> pos);

/// Evaluates a span of tiles into explicit sinks.  Assumes
/// gather_cluster_coords() ran at the current positions.  The virial sink is
/// separate from the fixed-point sinks so callers control its summation
/// grouping (see compute_clusters for why).
void compute_cluster_entries(const ClusterPairList& list,
                             std::span<const ClusterPairEntry> entries,
                             const PairTableSet& tables, const Box& box,
                             FixedForceArray& forces, EnergyBreakdown& energy,
                             Mat3& virial, double vdw_scale = 1.0,
                             double charge_product_scale = 1.0);

/// The scalar tile loop, bypassing ISA dispatch — the reference every SIMD
/// variant must match bit for bit (see ff/nonbonded_simd.hpp and
/// tests/simd_kernel_test.cpp).  compute_cluster_entries routes here when
/// the active ISA is scalar or the tables are outside the SIMD envelope.
void compute_cluster_entries_scalar(
    const ClusterPairList& list, std::span<const ClusterPairEntry> entries,
    const PairTableSet& tables, const Box& box, FixedForceArray& forces,
    EnergyBreakdown& energy, Mat3& virial, double vdw_scale = 1.0,
    double charge_product_scale = 1.0);

/// The deterministic chunk partition for a list: a function of the entry
/// count alone, never of the lane count, so per-chunk virial partials keep
/// the same boundaries (and the same bits) at any parallelism.
[[nodiscard]] util::ChunkPlan cluster_chunk_plan(const ClusterPairList& list);

/// Sizes and (when needed) clears the persistent partial sinks for one
/// evaluation over `plan` with `lanes` worker lanes.  Must run after the
/// chunk plan is known and before the first compute_clusters_chunk call.
void prepare_cluster_scratch(const ClusterPairList& list, size_t lanes,
                             size_t n_atoms, const util::ChunkPlan& plan);

/// Evaluates one chunk of tiles into the lane-private force accumulator
/// and the chunk's energy/virial partials.  Chunks may run concurrently on
/// distinct lanes; gather_cluster_coords() must have run at the current
/// positions.
void compute_clusters_chunk(const ClusterPairList& list,
                            const PairTableSet& tables, const Box& box,
                            const util::ChunkPlan& plan, size_t chunk,
                            size_t lane, double vdw_scale = 1.0,
                            double charge_product_scale = 1.0);

/// The fixed-order reduction slot: drains every lane's force partial into
/// `out` (integer, order-free) and merges chunk energy/virial partials in
/// ascending chunk order — the same summation grouping as a serial run.
void reduce_cluster_chunks(const ClusterPairList& list,
                           const util::ChunkPlan& plan, ForceResult& out);

/// Whole-list evaluation: gather + prepare + chunks + reduce, fanned out
/// over `exec` when parallel.  Bit-identical to ff::compute_pairs over the
/// source flat list in forces and energies, and bit-identical to itself at
/// any thread count (including the virial).
void compute_clusters(const ClusterPairList& list, const PairTableSet& tables,
                      std::span<const Vec3> pos, const Box& box,
                      ForceResult& out, double vdw_scale = 1.0,
                      double charge_product_scale = 1.0,
                      ExecutionContext* exec = nullptr);

}  // namespace antmd::ff
