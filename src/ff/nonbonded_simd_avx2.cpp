// AVX2 cluster kernel TU.  Compiled with -mavx2 -ffp-contract=off (AVX2
// hosts have FMA; contraction must stay off for bit-identity); see
// nonbonded_simd_impl.hpp for the exactness contract.
#include "ff/nonbonded_simd.hpp"
#include "ff/nonbonded_simd_impl.hpp"
#include "math/simd.hpp"

namespace antmd::ff {

void compute_cluster_entries_avx2(const ClusterPairList& list,
                                  std::span<const ClusterPairEntry> entries,
                                  const PairTableSet& tables, const Box& box,
                                  FixedForceArray& forces,
                                  EnergyBreakdown& energy, Mat3& virial,
                                  double vdw_scale,
                                  double charge_product_scale) {
  simd_detail::run_cluster_entries_simd<simd::Avx2Traits>(
      list, entries, tables, box, forces, energy, virial, vdw_scale,
      charge_product_scale);
}

}  // namespace antmd::ff
