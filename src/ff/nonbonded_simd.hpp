// Runtime ISA dispatch for the integer-SIMD cluster-pair kernels.
//
// The vector kernels (nonbonded_simd_{sse41,avx2,avx512}.cpp, each compiled
// with its own -m flags) are drop-in replacements for the scalar tile loop
// in nonbonded_cluster.cpp: same fixed-point quantize-once contract, same
// canonical 8-bucket virial grouping, bit-identical results on every input.
// Because every variant produces the same bits, the active ISA is a plain
// process-global — it affects speed, never trajectories — resolved once
// from (highest priority first):
//
//   1. the ANTMD_FORCE_ISA environment variable ("scalar" | "sse41" |
//      "avx2" | "avx512") — the cross-ISA differential harness's hook;
//   2. an explicit set_kernel_isa() call (the `nonbonded_simd` config key);
//   3. a cpuid probe picking the widest ISA this binary and CPU support.
//
// Forcing an ISA the build or CPU lacks throws ConfigError — a forced run
// must never silently fall back.  Per-call fallback to scalar still happens
// when a list/table combination is outside the SIMD kernels' envelope
// (non-uniform custom-table geometry; see PairTableSet::simd_arena).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "ff/nonbonded_cluster.hpp"

namespace antmd::ff {

/// Instruction sets the cluster kernel can dispatch to, widest last.
enum class KernelIsa : uint8_t {
  kScalar = 0,
  kSse41 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

[[nodiscard]] const char* to_string(KernelIsa isa);
/// Parses "scalar" / "sse41" / "avx2" / "avx512"; throws ConfigError.
[[nodiscard]] KernelIsa parse_kernel_isa(const std::string& name);

/// True when `isa` is both compiled into this binary and reported by
/// cpuid.  kScalar is always supported.
[[nodiscard]] bool kernel_isa_supported(KernelIsa isa);

/// The widest supported ISA (what auto-dispatch picks).
[[nodiscard]] KernelIsa probe_kernel_isa();

/// The ISA compute_cluster_entries currently dispatches to.  First call
/// resolves ANTMD_FORCE_ISA (throws ConfigError if it names an unknown or
/// unsupported ISA) and falls back to probe_kernel_isa().
[[nodiscard]] KernelIsa active_kernel_isa();

/// Sets the active ISA (config path).  Throws ConfigError when `isa` is
/// not supported.  ANTMD_FORCE_ISA still wins: when the env override is
/// present this is a no-op, so a forced differential run cannot be undone
/// by a config default.
void set_kernel_isa(KernelIsa isa);

// Per-ISA tile-loop entry points, one per TU so each can carry its own
// target flags.  Same signature and same results as the scalar path in
// compute_cluster_entries; callers must have checked
// tables.simd_arena().valid.  Only the variants the build supports are
// defined (ANTMD_HAVE_SIMD_* from CMake).
#if defined(ANTMD_HAVE_SIMD_SSE41)
void compute_cluster_entries_sse41(const ClusterPairList& list,
                                   std::span<const ClusterPairEntry> entries,
                                   const PairTableSet& tables, const Box& box,
                                   FixedForceArray& forces,
                                   EnergyBreakdown& energy, Mat3& virial,
                                   double vdw_scale,
                                   double charge_product_scale);
#endif
#if defined(ANTMD_HAVE_SIMD_AVX2)
void compute_cluster_entries_avx2(const ClusterPairList& list,
                                  std::span<const ClusterPairEntry> entries,
                                  const PairTableSet& tables, const Box& box,
                                  FixedForceArray& forces,
                                  EnergyBreakdown& energy, Mat3& virial,
                                  double vdw_scale,
                                  double charge_product_scale);
#endif
#if defined(ANTMD_HAVE_SIMD_AVX512)
void compute_cluster_entries_avx512(const ClusterPairList& list,
                                    std::span<const ClusterPairEntry> entries,
                                    const PairTableSet& tables, const Box& box,
                                    FixedForceArray& forces,
                                    EnergyBreakdown& energy, Mat3& virial,
                                    double vdw_scale,
                                    double charge_product_scale);
#endif

}  // namespace antmd::ff
