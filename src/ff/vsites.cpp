#include "ff/vsites.hpp"

#include <cmath>

namespace antmd::ff {
namespace {

/// Scales an integer force triple by a real coefficient, rounding each
/// component; used so the redistribution below can conserve total momentum
/// exactly by giving one parent the integer residual.
std::array<int64_t, 3> scale_quanta(const std::array<int64_t, 3>& q,
                                    double c) {
  return {std::llround(c * static_cast<double>(q[0])),
          std::llround(c * static_cast<double>(q[1])),
          std::llround(c * static_cast<double>(q[2]))};
}

std::array<int64_t, 3> sub(const std::array<int64_t, 3>& a,
                           const std::array<int64_t, 3>& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

}  // namespace

void construct_virtual_sites(std::span<const VirtualSite> sites,
                             std::span<Vec3> pos, const Box& box) {
  for (const VirtualSite& v : sites) {
    const Vec3& p0 = pos[v.parents[0]];
    switch (v.kind) {
      case VirtualSite::Kind::kLinear2: {
        Vec3 d = box.min_image(pos[v.parents[1]], p0);
        pos[v.site] = p0 + v.a * d;
        break;
      }
      case VirtualSite::Kind::kPlanar3: {
        Vec3 d1 = box.min_image(pos[v.parents[1]], p0);
        Vec3 d2 = box.min_image(pos[v.parents[2]], p0);
        pos[v.site] = p0 + v.a * d1 + v.b * d2;
        break;
      }
    }
  }
}

void spread_virtual_site_forces(std::span<const VirtualSite> sites,
                                std::span<const Vec3> /*pos*/,
                                const Box& /*box*/, FixedForceArray& forces) {
  for (const VirtualSite& v : sites) {
    std::array<int64_t, 3> q = forces.quanta(v.site);
    if (q[0] == 0 && q[1] == 0 && q[2] == 0) continue;
    forces.set_quanta(v.site, {0, 0, 0});
    // The site position is a *linear* function of its parents, so the chain
    // rule gives constant weights; parent 0 takes the integer residual so
    // that the redistributed quanta sum exactly to the original force.
    switch (v.kind) {
      case VirtualSite::Kind::kLinear2: {
        auto q1 = scale_quanta(q, v.a);
        forces.add_quanta(v.parents[1], q1);
        forces.add_quanta(v.parents[0], sub(q, q1));
        break;
      }
      case VirtualSite::Kind::kPlanar3: {
        auto q1 = scale_quanta(q, v.a);
        auto q2 = scale_quanta(q, v.b);
        forces.add_quanta(v.parents[1], q1);
        forces.add_quanta(v.parents[2], q2);
        forces.add_quanta(v.parents[0], sub(sub(q, q1), q2));
        break;
      }
    }
  }
}

}  // namespace antmd::ff
