// ForceField: the user-facing force engine.
//
// Owns the tabulated pair interactions, bonded terms, restraints, virtual
// sites and the GSE long-range solver, and exposes the split evaluation
// (bonded / real-space pairs / k-space) that both the single-host simulator
// (md::Simulation) and the machine-mapped runtime call.  The split mirrors
// the hardware mapping: pair tables → HTIS pipelines, everything else →
// geometry cores, k-space → spread/FFT/interpolate pipeline.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ewald/gse.hpp"
#include "ff/bias.hpp"
#include "ff/bonded.hpp"
#include "ff/energy.hpp"
#include "ff/nonbonded.hpp"
#include "ff/nonbonded_cluster.hpp"
#include "ff/restraints.hpp"
#include "ff/vsites.hpp"
#include "topo/topology.hpp"

namespace antmd {

class ForceField {
 public:
  /// Builds tables for the topology under the given nonbonded model.
  /// The topology must outlive the force field.
  ForceField(const Topology& topo, ff::NonbondedModel model,
             GseParams gse = GseParams{});

  // --- generality extensions -------------------------------------------------
  /// Installs a custom tabulated pair potential for a type pair.
  void set_custom_pair_table(uint32_t type_a, uint32_t type_b,
                             RadialTable table);
  void add_position_restraint(ff::PositionRestraint r);
  /// Installs (or replaces) a mutable pair-distance bias; returns its index.
  size_t add_pair_bias(ff::PairBias bias);
  size_t add_dihedral_bias(ff::DihedralBias bias);
  void clear_pair_biases();
  void add_distance_restraint(ff::DistanceRestraint r);
  /// Returns the index of the added spring (for reading extensions back).
  size_t add_steered_spring(ff::SteeredSpring s);
  void set_external_field(Vec3 field);
  /// Global Hamiltonian scalings (H-REMD / FEP windows).
  void set_vdw_scale(double s) { vdw_scale_ = s; }
  void set_charge_product_scale(double s) { charge_scale_ = s; }
  [[nodiscard]] double vdw_scale() const { return vdw_scale_; }
  [[nodiscard]] double charge_product_scale() const { return charge_scale_; }

  // --- evaluation -------------------------------------------------------------
  /// Bonded terms + restraints + 1-4 pairs + external field.
  /// `time` is elapsed simulation time (internal units) for steered springs.
  void compute_bonded(std::span<const Vec3> pos, const Box& box, double time,
                      ForceResult& out) const;

  /// Real-space nonbonded terms over an externally built pair list.
  void compute_nonbonded(std::span<const ff::PairEntry> pairs,
                         std::span<const Vec3> pos, const Box& box,
                         ForceResult& out) const;

  /// Same terms over the blocked cluster-pair list (bit-identical to
  /// compute_nonbonded over the list's source pairs); `exec` fans the tile
  /// chunks out deterministically when parallel.
  void compute_nonbonded_clusters(const ff::ClusterPairList& clusters,
                                  std::span<const Vec3> pos, const Box& box,
                                  ForceResult& out,
                                  ExecutionContext* exec = nullptr) const;

  /// Reciprocal-space electrostatics (no-op unless the model is kEwaldReal).
  void compute_kspace(std::span<const Vec3> pos, const Box& box,
                      ForceResult& out) const;

  /// All of the above plus virtual-site construction/spreading.
  /// `pos` is mutable because virtual-site positions are (re)constructed.
  void compute_all(std::span<Vec3> pos, const Box& box, double time,
                   std::span<const ff::PairEntry> pairs,
                   ForceResult& out) const;

  /// Rebuilds box-dependent machinery after a box change (barostat).
  void on_box_changed(const Box& box);

  // --- access ------------------------------------------------------------------
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const ff::PairTableSet& tables() const { return tables_; }
  [[nodiscard]] const ff::NonbondedModel& model() const { return tables_.model(); }
  [[nodiscard]] bool has_kspace() const { return gse_ != nullptr; }
  [[nodiscard]] const GseSolver* gse() const { return gse_.get(); }
  [[nodiscard]] const std::vector<ff::SteeredSpring>& steered_springs() const {
    return steered_;
  }
  [[nodiscard]] const std::vector<ff::PairBias>& pair_biases() const {
    return biases_;
  }
  [[nodiscard]] const std::vector<ff::DihedralBias>& dihedral_biases() const {
    return dihedral_biases_;
  }
  [[nodiscard]] const std::vector<ff::PositionRestraint>&
  position_restraints() const {
    return pos_restraints_;
  }
  [[nodiscard]] const std::vector<ff::DistanceRestraint>&
  distance_restraints() const {
    return dist_restraints_;
  }
  [[nodiscard]] const std::optional<ff::ExternalField>& external_field()
      const {
    return field_;
  }
  [[nodiscard]] const std::vector<std::pair<uint32_t, uint32_t>>&
  excluded_pairs() const {
    return excluded_pairs_;
  }

  /// Visits the static data a step reads — every pair table's knot/packed
  /// arrays and the flattened exclusion list — as fn(name, data, bytes)
  /// with mutable pointers, for SDC scrub registration (golden CRC +
  /// pristine mirror, see resilience/audit.hpp).  All of it is immutable
  /// once the run starts, which is what makes build-time CRCs sound.
  template <typename Fn>
  void visit_scrub_regions(Fn&& fn) {
    tables_.visit_scrub_regions(fn);
    fn("exclusions", static_cast<void*>(excluded_pairs_.data()),
       excluded_pairs_.size() * sizeof(std::pair<uint32_t, uint32_t>));
  }

 private:
  const Topology* topo_;
  ff::PairTableSet tables_;
  std::unique_ptr<GseSolver> gse_;
  std::vector<std::pair<uint32_t, uint32_t>> excluded_pairs_;
  std::vector<ff::PositionRestraint> pos_restraints_;
  std::vector<ff::DistanceRestraint> dist_restraints_;
  std::vector<ff::SteeredSpring> steered_;
  std::vector<ff::PairBias> biases_;
  std::vector<ff::DihedralBias> dihedral_biases_;
  std::optional<ff::ExternalField> field_;
  double vdw_scale_ = 1.0;
  double charge_scale_ = 1.0;
};

}  // namespace antmd
