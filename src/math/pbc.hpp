// Orthorhombic periodic box: wrapping, minimum-image displacement, volume.
#pragma once

#include <cmath>

#include "math/vec.hpp"

namespace antmd {

/// Orthorhombic periodic simulation box with edges (lx, ly, lz) in Å.
/// The primary cell is [0, lx) x [0, ly) x [0, lz).
class Box {
 public:
  Box() : edges_{0, 0, 0} {}
  Box(double lx, double ly, double lz);
  static Box cubic(double edge) { return Box(edge, edge, edge); }

  [[nodiscard]] const Vec3& edges() const { return edges_; }
  [[nodiscard]] double volume() const {
    return edges_.x * edges_.y * edges_.z;
  }
  [[nodiscard]] double min_edge() const;

  /// Maps a point into the primary cell.
  [[nodiscard]] Vec3 wrap(const Vec3& r) const;

  /// Minimum-image displacement a - b.
  [[nodiscard]] Vec3 min_image(const Vec3& a, const Vec3& b) const;

  /// Minimum-image squared distance.
  [[nodiscard]] double distance2(const Vec3& a, const Vec3& b) const {
    return norm2(min_image(a, b));
  }

  /// Returns a box scaled isotropically by factor s on each edge.
  [[nodiscard]] Box scaled(double s) const {
    return Box(edges_.x * s, edges_.y * s, edges_.z * s);
  }
  /// Returns a box scaled anisotropically (per-axis factors).
  [[nodiscard]] Box scaled(double sx, double sy, double sz) const {
    return Box(edges_.x * sx, edges_.y * sy, edges_.z * sz);
  }

 private:
  Vec3 edges_;
};

}  // namespace antmd
