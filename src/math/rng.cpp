#include "math/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace antmd {
namespace {

constexpr uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void philox_round(std::array<uint32_t, 4>& ctr,
                         std::array<uint32_t, 2>& key) {
  uint64_t p0 = static_cast<uint64_t>(kPhiloxM0) * ctr[0];
  uint64_t p1 = static_cast<uint64_t>(kPhiloxM1) * ctr[2];
  uint32_t hi0 = static_cast<uint32_t>(p0 >> 32);
  uint32_t lo0 = static_cast<uint32_t>(p0);
  uint32_t hi1 = static_cast<uint32_t>(p1 >> 32);
  uint32_t lo1 = static_cast<uint32_t>(p1);
  ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
  key[0] += kPhiloxW0;
  key[1] += kPhiloxW1;
}

constexpr double kInv2Pow32 = 1.0 / 4294967296.0;

inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::array<uint32_t, 4> philox4x32(const std::array<uint32_t, 4>& counter,
                                   const std::array<uint32_t, 2>& key) {
  std::array<uint32_t, 4> ctr = counter;
  std::array<uint32_t, 2> k = key;
  for (int round = 0; round < 10; ++round) philox_round(ctr, k);
  return ctr;
}

CounterRng::CounterRng(uint64_t seed, uint64_t stream) : stream_(stream) {
  key_ = {static_cast<uint32_t>(seed), static_cast<uint32_t>(seed >> 32)};
}

std::array<uint32_t, 4> CounterRng::block(uint64_t index, uint64_t step,
                                          uint32_t draw) const {
  // Fold the stream into the counter's fourth word and the draw number so
  // distinct (stream, index, step, draw) tuples never collide.
  std::array<uint32_t, 4> counter = {
      static_cast<uint32_t>(index), static_cast<uint32_t>(index >> 32),
      static_cast<uint32_t>(step),
      static_cast<uint32_t>(step >> 32) ^
          static_cast<uint32_t>(stream_ * 0x85EBCA6Bu) ^ (draw << 24)};
  std::array<uint32_t, 2> key = {key_[0] ^ static_cast<uint32_t>(stream_),
                                 key_[1] ^ static_cast<uint32_t>(stream_ >> 32) ^
                                     draw};
  return philox4x32(counter, key);
}

double CounterRng::uniform(uint64_t index, uint64_t step,
                           uint32_t draw) const {
  auto r = block(index, step, draw);
  // 0.5 offset keeps the value strictly inside (0, 1) so log() is safe.
  return (static_cast<double>(r[0]) + 0.5) * kInv2Pow32;
}

double CounterRng::gaussian(uint64_t index, uint64_t step,
                            uint32_t draw) const {
  auto r = block(index, step, draw);
  double u1 = (static_cast<double>(r[0]) + 0.5) * kInv2Pow32;
  double u2 = (static_cast<double>(r[1]) + 0.5) * kInv2Pow32;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::array<double, 3> CounterRng::gaussian3(uint64_t index,
                                            uint64_t step) const {
  auto r = block(index, step, 0);
  double u1 = (static_cast<double>(r[0]) + 0.5) * kInv2Pow32;
  double u2 = (static_cast<double>(r[1]) + 0.5) * kInv2Pow32;
  double u3 = (static_cast<double>(r[2]) + 0.5) * kInv2Pow32;
  double u4 = (static_cast<double>(r[3]) + 0.5) * kInv2Pow32;
  double m1 = std::sqrt(-2.0 * std::log(u1));
  double m2 = std::sqrt(-2.0 * std::log(u3));
  return {m1 * std::cos(2.0 * M_PI * u2), m1 * std::sin(2.0 * M_PI * u2),
          m2 * std::cos(2.0 * M_PI * u4)};
}

uint64_t CounterRng::uniform_int(uint64_t index, uint64_t step, uint64_t bound,
                                 uint32_t draw) const {
  ANTMD_REQUIRE(bound > 0, "uniform_int bound must be positive");
  auto r = block(index, step, draw);
  uint64_t wide = (static_cast<uint64_t>(r[0]) << 32) | r[1];
  return wide % bound;
}

SequentialRng::SequentialRng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

uint64_t SequentialRng::next_u64() {
  // xoshiro256**
  uint64_t result = rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double SequentialRng::uniform() {
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

double SequentialRng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double SequentialRng::gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  double u2 = uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

uint64_t SequentialRng::uniform_int(uint64_t bound) {
  ANTMD_REQUIRE(bound > 0, "uniform_int bound must be positive");
  return next_u64() % bound;
}

}  // namespace antmd
