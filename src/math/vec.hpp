// 3-vector and 3x3 matrix types used throughout antmd.
//
// Everything is double precision; the fixed-point representation used by the
// machine model lives in math/fixed.hpp and converts to/from these.
#pragma once

#include <array>
#include <cmath>
#include <ostream>

namespace antmd {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}
constexpr double norm2(const Vec3& a) { return dot(a, a); }
inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }
inline Vec3 normalized(const Vec3& a) { return a / norm(a); }

constexpr bool operator==(const Vec3& a, const Vec3& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// Row-major 3x3 matrix; only the handful of operations MD needs.
struct Mat3 {
  std::array<double, 9> m{};  // rows

  static constexpr Mat3 identity() {
    Mat3 r;
    r.m = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    return r;
  }
  static constexpr Mat3 diagonal(double a, double b, double c) {
    Mat3 r;
    r.m = {a, 0, 0, 0, b, 0, 0, 0, c};
    return r;
  }

  constexpr double operator()(int r, int c) const { return m[3 * r + c]; }
  constexpr double& operator()(int r, int c) { return m[3 * r + c]; }

  constexpr Mat3& operator+=(const Mat3& o) {
    for (int i = 0; i < 9; ++i) m[i] += o.m[i];
    return *this;
  }
  constexpr Mat3& operator*=(double s) {
    for (auto& v : m) v *= s;
    return *this;
  }
};

constexpr Vec3 operator*(const Mat3& a, const Vec3& v) {
  return {a(0, 0) * v.x + a(0, 1) * v.y + a(0, 2) * v.z,
          a(1, 0) * v.x + a(1, 1) * v.y + a(1, 2) * v.z,
          a(2, 0) * v.x + a(2, 1) * v.y + a(2, 2) * v.z};
}

/// Outer product a b^T (used for virial accumulation).
constexpr Mat3 outer(const Vec3& a, const Vec3& b) {
  Mat3 r;
  r.m = {a.x * b.x, a.x * b.y, a.x * b.z, a.y * b.x, a.y * b.y,
         a.y * b.z, a.z * b.x, a.z * b.y, a.z * b.z};
  return r;
}

constexpr double trace(const Mat3& a) { return a(0, 0) + a(1, 1) + a(2, 2); }

}  // namespace antmd
