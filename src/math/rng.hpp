// Counter-based random number generation (Philox-4x32-10).
//
// Anton-class machines need random streams that do not depend on how work is
// distributed across nodes: the Langevin thermostat on particle i at step n
// must draw the same noise whether i lives on node 3 or node 117.  A
// counter-based generator keyed by (seed, stream) and counted by
// (particle id, step) provides exactly that property, which the
// decomposition-independence tests rely on.
#pragma once

#include <array>
#include <cstdint>

namespace antmd {

/// Stateless Philox-4x32-10 block function.
/// Given a 128-bit counter and 64-bit key, produces 128 random bits.
std::array<uint32_t, 4> philox4x32(const std::array<uint32_t, 4>& counter,
                                   const std::array<uint32_t, 2>& key);

/// A convenient stream view over the Philox block function.
///
/// CounterRng(seed, stream) identifies a stream; draws are addressed
/// explicitly by (index, step) so callers control reproducibility.
class CounterRng {
 public:
  CounterRng(uint64_t seed, uint64_t stream);

  /// Uniform in [0, 1). Deterministic function of (index, step, draw).
  [[nodiscard]] double uniform(uint64_t index, uint64_t step,
                               uint32_t draw = 0) const;

  /// Standard normal via Box–Muller on two uniforms.
  [[nodiscard]] double gaussian(uint64_t index, uint64_t step,
                                uint32_t draw = 0) const;

  /// Three independent standard normals (for thermostat kicks).
  [[nodiscard]] std::array<double, 3> gaussian3(uint64_t index,
                                                uint64_t step) const;

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] uint64_t uniform_int(uint64_t index, uint64_t step,
                                     uint64_t bound, uint32_t draw = 0) const;

 private:
  [[nodiscard]] std::array<uint32_t, 4> block(uint64_t index, uint64_t step,
                                              uint32_t draw) const;

  std::array<uint32_t, 2> key_;
  uint64_t stream_;
};

/// Small sequential PRNG (xoshiro256**) for places where a plain stateful
/// generator is fine: system builders, Monte Carlo moves in analysis.
class SequentialRng {
 public:
  /// Full generator state, exposed so checkpointed drivers (tempering,
  /// replica exchange, MC barostat) resume their random streams bit-exactly.
  struct Snapshot {
    std::array<uint64_t, 4> state{};
    bool have_spare = false;
    double spare = 0.0;
  };

  explicit SequentialRng(uint64_t seed);

  uint64_t next_u64();
  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal.
  double gaussian();
  /// Uniform integer in [0, bound).
  uint64_t uniform_int(uint64_t bound);

  [[nodiscard]] Snapshot snapshot() const {
    return {state_, have_spare_, spare_};
  }
  void restore(const Snapshot& snap) {
    state_ = snap.state;
    have_spare_ = snap.have_spare;
    spare_ = snap.spare;
  }

 private:
  std::array<uint64_t, 4> state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace antmd
