// Fixed-point numerics modeled on Anton's deterministic arithmetic.
//
// Anton stores positions in fixed point and accumulates forces as integers,
// which makes the result of a reduction independent of summation order and
// therefore bit-identical regardless of how atoms and pairs are distributed
// across nodes.  antmd reproduces that: pair forces are quantized once per
// pair, applied with exactly opposite sign to the two atoms, and accumulated
// in 64-bit integers.  Tests assert bitwise equality of trajectories across
// node counts (experiment T5).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "math/vec.hpp"

namespace antmd {

namespace fixed {

/// Position quantum: 2^-21 Å (covers ±1024 Å in an int32 with ~0.5 µÅ
/// resolution — matches the dynamic range a 32-bit machine word affords).
inline constexpr double kPosScale = 2097152.0;  // 2^21

/// Force quantum: 2^-24 kcal/mol/Å.
inline constexpr double kForceScale = 16777216.0;  // 2^24

/// Energy quantum: 2^-32 kcal/mol (per-pair terms are O(1)).
inline constexpr double kEnergyScale = 4294967296.0;  // 2^32

inline int64_t quantize(double v, double scale) {
  return std::llround(v * scale);
}

/// Bit-for-bit equal to quantize(), computed with the hardware round
/// instruction instead of the libm llround call (which most compilers
/// cannot inline because no instruction rounds ties away from zero).
/// nearbyint rounds ties to even, so the only inputs where the two differ
/// are exact .5 ties; t - nearbyint(t) is computed exactly whenever
/// |t - nearbyint(t)| <= 0.5 (Sterbenz), so the tie test below is exact
/// and the correction restores llround's away-from-zero behaviour.
/// Hot kernels use this; everything else keeps the libm spelling.
inline int64_t quantize_round(double v, double scale) {
  const double t = v * scale;
  const double r = std::nearbyint(t);
  auto q = static_cast<int64_t>(r);
  const double d = t - r;
  if (d == 0.5 && t > 0.0) {
    ++q;  // e.g. 2.5: nearbyint gives 2, llround gives 3
  } else if (d == -0.5 && t < 0.0) {
    --q;  // e.g. -2.5: nearbyint gives -2, llround gives -3
  }
  return q;
}
inline double dequantize(int64_t q, double scale) {
  return static_cast<double>(q) / scale;
}

}  // namespace fixed

/// 32-bit fixed-point position triple (what travels over the modeled torus).
struct FixedPos {
  int32_t x = 0;
  int32_t y = 0;
  int32_t z = 0;

  static FixedPos from_vec(const Vec3& v) {
    return {static_cast<int32_t>(fixed::quantize(v.x, fixed::kPosScale)),
            static_cast<int32_t>(fixed::quantize(v.y, fixed::kPosScale)),
            static_cast<int32_t>(fixed::quantize(v.z, fixed::kPosScale))};
  }
  [[nodiscard]] Vec3 to_vec() const {
    return {fixed::dequantize(x, fixed::kPosScale),
            fixed::dequantize(y, fixed::kPosScale),
            fixed::dequantize(z, fixed::kPosScale)};
  }
  friend bool operator==(const FixedPos&, const FixedPos&) = default;
};

/// Quantizes a position vector through the 32-bit wire format and back,
/// i.e. what every node sees after a position broadcast.
inline Vec3 snap_position(const Vec3& v) {
  return FixedPos::from_vec(v).to_vec();
}

/// Order-independent force accumulator: one int64 triple per atom.
class FixedForceArray {
 public:
  FixedForceArray() = default;
  explicit FixedForceArray(size_t n) : data_(n, {0, 0, 0}) {}

  void resize(size_t n) { data_.assign(n, {0, 0, 0}); }
  void clear() { std::fill(data_.begin(), data_.end(), Triple{0, 0, 0}); }
  [[nodiscard]] size_t size() const { return data_.size(); }

  /// Adds force f to atom i (quantized).
  void add(size_t i, const Vec3& f) {
    auto& t = data_[i];
    t[0] += fixed::quantize(f.x, fixed::kForceScale);
    t[1] += fixed::quantize(f.y, fixed::kForceScale);
    t[2] += fixed::quantize(f.z, fixed::kForceScale);
  }

  /// Adds +f to atom i and the bit-exact opposite to atom j.
  void add_pair(size_t i, size_t j, const Vec3& f) {
    int64_t qx = fixed::quantize(f.x, fixed::kForceScale);
    int64_t qy = fixed::quantize(f.y, fixed::kForceScale);
    int64_t qz = fixed::quantize(f.z, fixed::kForceScale);
    auto& ti = data_[i];
    ti[0] += qx; ti[1] += qy; ti[2] += qz;
    auto& tj = data_[j];
    tj[0] -= qx; tj[1] -= qy; tj[2] -= qz;
  }

  /// Element-wise merge of another accumulator (a modeled reduction).
  void merge(const FixedForceArray& other);

  /// Adds this accumulator into `dst` and zeroes it in the same pass — the
  /// persistent per-lane partial pattern: lane arrays stay allocated and
  /// zeroed between evaluations instead of being re-zeroed every call.
  void drain_into(FixedForceArray& dst);

  /// Adds src's quanta for atoms in [lo, hi) only.  An order-free integer
  /// fold that parallel reductions can split into disjoint atom ranges.
  void accumulate_range(const FixedForceArray& src, size_t lo, size_t hi);

  /// Raw integer quanta for atom i (for exact redistribution algorithms).
  [[nodiscard]] std::array<int64_t, 3> quanta(size_t i) const {
    return data_[i];
  }
  void add_quanta(size_t i, const std::array<int64_t, 3>& q) {
    auto& t = data_[i];
    t[0] += q[0]; t[1] += q[1]; t[2] += q[2];
  }
  void set_quanta(size_t i, const std::array<int64_t, 3>& q) { data_[i] = q; }

  [[nodiscard]] Vec3 force(size_t i) const {
    const auto& t = data_[i];
    return {fixed::dequantize(t[0], fixed::kForceScale),
            fixed::dequantize(t[1], fixed::kForceScale),
            fixed::dequantize(t[2], fixed::kForceScale)};
  }

  [[nodiscard]] std::vector<Vec3> to_vectors() const;

  friend bool operator==(const FixedForceArray&,
                         const FixedForceArray&) = default;

 private:
  using Triple = std::array<int64_t, 3>;
  std::vector<Triple> data_;
};

/// Order-independent scalar accumulator (energies, virials).
class FixedScalar {
 public:
  FixedScalar() = default;

  void add(double v) { q_ += fixed::quantize(v, fixed::kEnergyScale); }
  /// Adds pre-quantized energy quanta (kernels that batch per-pair quanta
  /// in a local int64 and flush once — same integer sum as per-pair add()).
  void add_raw(int64_t q) { q_ += q; }
  void merge(const FixedScalar& o) { q_ += o.q_; }
  [[nodiscard]] double value() const {
    return fixed::dequantize(q_, fixed::kEnergyScale);
  }
  /// Raw quanta, for bit-exact checkpoint round trips.
  [[nodiscard]] int64_t raw() const { return q_; }
  void set_raw(int64_t q) { q_ = q; }
  friend bool operator==(const FixedScalar&, const FixedScalar&) = default;

 private:
  int64_t q_ = 0;
};

}  // namespace antmd
