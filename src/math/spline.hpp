// Tabulated function machinery.
//
// Anton's pairwise point interaction modules (PPIMs) evaluate *all* radial
// nonbonded functional forms — Lennard-Jones, real-space Ewald, and any
// user-supplied potential — through the same hardware table-interpolation
// path, indexed by squared distance to avoid a sqrt in the pipeline.  The
// RadialTable below models that path in software and is shared by the
// standard and "generality extension" potentials alike.
#pragma once

#include <functional>
#include <vector>

namespace antmd {

/// Natural cubic spline over a strictly increasing x grid.
class CubicSpline {
 public:
  CubicSpline(std::vector<double> x, std::vector<double> y);

  /// Interpolated value; clamps to end values outside the grid.
  [[nodiscard]] double value(double x) const;
  /// Interpolated derivative; zero outside the grid.
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] double x_min() const { return x_.front(); }
  [[nodiscard]] double x_max() const { return x_.back(); }

 private:
  [[nodiscard]] size_t interval(double x) const;

  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> y2_;  // second derivatives at knots
};

/// Result of a radial-table lookup.
struct RadialEval {
  double energy = 0.0;        ///< U(r) in kcal/mol
  double force_over_r = 0.0;  ///< -(1/r) dU/dr; force vector = this * r_ij
};

/// Flat, by-value snapshot of a RadialTable for hot loops: the evaluation
/// constants live in the struct (no pointer chase through the table object)
/// and the knot data is the interleaved packed_ array, so one lookup touches
/// one or two adjacent cache lines instead of eight scattered ones.
struct RadialTableView {
  double s_min = 0.0;
  double s_max = 0.0;
  double inv_ds = 0.0;
  double ds = 0.0;
  size_t last = 0;               ///< highest valid bin index
  const double* packed = nullptr;  ///< 8 doubles per bin (see RadialTable)
};

/// Radial interaction table sampled uniformly in s = r², evaluated with
/// cubic Hermite interpolation (value and d/ds at each knot), mirroring the
/// hardware evaluator.  Below s_min the table clamps to the first knot (a
/// pipeline would saturate similarly); above s_max it returns exactly zero.
class RadialTable {
 public:
  /// Builds a table from U(r) and dU/dr over r in [r_min, r_cut].
  /// If shift_to_zero is true, U is shifted so U(r_cut) == 0 (energy
  /// conservation with truncated potentials).
  static RadialTable from_potential(
      const std::function<double(double)>& energy,
      const std::function<double(double)>& denergy_dr, double r_min,
      double r_cut, size_t bins, bool shift_to_zero = true);

  [[nodiscard]] RadialEval evaluate(double r2) const;

  /// Same arithmetic as evaluate(), defined inline so hot kernels get it
  /// folded into their loop (no call, knot-array base pointers hoisted).
  /// The two entry points return identical bits for every input.
  [[nodiscard]] RadialEval evaluate_inline(double r2) const {
    if (r2 >= s_max_) return {};
    double s = r2 > s_min_ ? r2 : s_min_;
    double u = (s - s_min_) * inv_ds_;
    auto bin = static_cast<size_t>(u);
    const size_t last = value_.size() - 2;
    if (bin > last) bin = last;
    double tloc = u - static_cast<double>(bin);

    // Cubic Hermite basis.
    double t2 = tloc * tloc;
    double t3 = t2 * tloc;
    double h00 = 2 * t3 - 3 * t2 + 1;
    double h10 = t3 - 2 * t2 + tloc;
    double h01 = -2 * t3 + 3 * t2;
    double h11 = t3 - t2;

    RadialEval out;
    out.energy = h00 * value_[bin] + h10 * ds_ * dvalue_[bin] +
                 h01 * value_[bin + 1] + h11 * ds_ * dvalue_[bin + 1];
    out.force_over_r = h00 * gvalue_[bin] + h10 * ds_ * dgvalue_[bin] +
                       h01 * gvalue_[bin + 1] + h11 * ds_ * dgvalue_[bin + 1];
    return out;
  }

  /// Snapshot for evaluate_view(); valid while this table is alive and
  /// unmoved (hot kernels build their view grid per call).
  [[nodiscard]] RadialTableView view() const {
    return {s_min_, s_max_, inv_ds_, ds_, value_.size() - 2,
            packed_.data() + packed_skip_};
  }

  [[nodiscard]] size_t bins() const { return value_.empty() ? 0
                                                            : value_.size() - 1; }
  [[nodiscard]] double r_cut() const { return r_cut_; }

  /// Visits every byte range a lookup can read — the four knot arrays
  /// (evaluate/evaluate_inline) and the packed per-bin copy
  /// (evaluate_view) — as fn(name, data, bytes) with mutable pointers.
  /// This is the SDC scrubber's registration hook: the table is immutable
  /// after from_potential(), so a golden CRC of each region taken at build
  /// time stays valid for the table's whole life, and a mismatch later is
  /// proof of memory corruption (repairable by memcpy from the mirror).
  template <typename Fn>
  void visit_scrub_regions(Fn&& fn) {
    auto bytes = [](std::vector<double>& v) { return v.size() * sizeof(double); };
    fn("spline.value", static_cast<void*>(value_.data()), bytes(value_));
    fn("spline.dvalue", static_cast<void*>(dvalue_.data()), bytes(dvalue_));
    fn("spline.gvalue", static_cast<void*>(gvalue_.data()), bytes(gvalue_));
    fn("spline.dgvalue", static_cast<void*>(dgvalue_.data()),
       bytes(dgvalue_));
    fn("spline.packed", static_cast<void*>(packed_.data()), bytes(packed_));
  }

 private:
  RadialTable() = default;

  double s_min_ = 0.0;
  double s_max_ = 0.0;
  double inv_ds_ = 0.0;
  double ds_ = 0.0;  ///< 1.0 / inv_ds_, cached (spacing used by the basis)
  double r_cut_ = 0.0;
  // Knot arrays for U(s) and G(s) = -(1/r) dU/dr as functions of s = r².
  std::vector<double> value_;    // U at knots
  std::vector<double> dvalue_;   // dU/ds at knots
  std::vector<double> gvalue_;   // G at knots
  std::vector<double> dgvalue_;  // dG/ds at knots
  // Per-bin copy of the knot data, 8 doubles per bin in the order
  // (value, dvalue, gvalue, dgvalue) for the bin's lower knot followed by
  // the same four for its upper knot.  Each knot is stored twice (once per
  // adjacent bin) so one lookup reads exactly one 64-byte cache line;
  // packed_skip_ is the element offset that made the first bin's slot
  // 64-byte-aligned when the table was built (copies may lose alignment,
  // which costs nothing but speed).
  std::vector<double> packed_;
  size_t packed_skip_ = 0;
};

/// Same arithmetic as RadialTable::evaluate_inline(), reading the per-bin
/// packed layout through a RadialTableView, without the above-cutoff test:
/// the caller must guarantee r2 < s_max (hot kernels have already applied
/// the cutoff, which equals s_max).  Every product and sum appears in the
/// same order on the same values, so results are bit-identical to the
/// member entry points for every in-range input.
[[nodiscard]] inline RadialEval evaluate_view_incutoff(
    const RadialTableView& v, double r2) {
  double s = r2 > v.s_min ? r2 : v.s_min;
  double u = (s - v.s_min) * v.inv_ds;
  auto bin = static_cast<size_t>(u);
  if (bin > v.last) bin = v.last;
  double tloc = u - static_cast<double>(bin);

  double t2 = tloc * tloc;
  double t3 = t2 * tloc;
  double h00 = 2 * t3 - 3 * t2 + 1;
  double h10 = t3 - 2 * t2 + tloc;
  double h01 = -2 * t3 + 3 * t2;
  double h11 = t3 - t2;

  const double* p = v.packed + 8 * bin;
  RadialEval out;
  out.energy = h00 * p[0] + h10 * v.ds * p[1] +
               h01 * p[4] + h11 * v.ds * p[5];
  out.force_over_r = h00 * p[2] + h10 * v.ds * p[3] +
                     h01 * p[6] + h11 * v.ds * p[7];
  return out;
}

/// evaluate_view_incutoff() behind the same out-of-range guard as
/// RadialTable::evaluate(): zero at/above s_max.
[[nodiscard]] inline RadialEval evaluate_view(const RadialTableView& v,
                                              double r2) {
  if (r2 >= v.s_max) return {};
  return evaluate_view_incutoff(v, r2);
}

}  // namespace antmd
