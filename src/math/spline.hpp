// Tabulated function machinery.
//
// Anton's pairwise point interaction modules (PPIMs) evaluate *all* radial
// nonbonded functional forms — Lennard-Jones, real-space Ewald, and any
// user-supplied potential — through the same hardware table-interpolation
// path, indexed by squared distance to avoid a sqrt in the pipeline.  The
// RadialTable below models that path in software and is shared by the
// standard and "generality extension" potentials alike.
#pragma once

#include <functional>
#include <vector>

namespace antmd {

/// Natural cubic spline over a strictly increasing x grid.
class CubicSpline {
 public:
  CubicSpline(std::vector<double> x, std::vector<double> y);

  /// Interpolated value; clamps to end values outside the grid.
  [[nodiscard]] double value(double x) const;
  /// Interpolated derivative; zero outside the grid.
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] double x_min() const { return x_.front(); }
  [[nodiscard]] double x_max() const { return x_.back(); }

 private:
  [[nodiscard]] size_t interval(double x) const;

  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> y2_;  // second derivatives at knots
};

/// Result of a radial-table lookup.
struct RadialEval {
  double energy = 0.0;        ///< U(r) in kcal/mol
  double force_over_r = 0.0;  ///< -(1/r) dU/dr; force vector = this * r_ij
};

/// Radial interaction table sampled uniformly in s = r², evaluated with
/// cubic Hermite interpolation (value and d/ds at each knot), mirroring the
/// hardware evaluator.  Below s_min the table clamps to the first knot (a
/// pipeline would saturate similarly); above s_max it returns exactly zero.
class RadialTable {
 public:
  /// Builds a table from U(r) and dU/dr over r in [r_min, r_cut].
  /// If shift_to_zero is true, U is shifted so U(r_cut) == 0 (energy
  /// conservation with truncated potentials).
  static RadialTable from_potential(
      const std::function<double(double)>& energy,
      const std::function<double(double)>& denergy_dr, double r_min,
      double r_cut, size_t bins, bool shift_to_zero = true);

  [[nodiscard]] RadialEval evaluate(double r2) const;

  [[nodiscard]] size_t bins() const { return value_.empty() ? 0
                                                            : value_.size() - 1; }
  [[nodiscard]] double r_cut() const { return r_cut_; }

 private:
  RadialTable() = default;

  double s_min_ = 0.0;
  double s_max_ = 0.0;
  double inv_ds_ = 0.0;
  double r_cut_ = 0.0;
  // Knot arrays for U(s) and G(s) = -(1/r) dU/dr as functions of s = r².
  std::vector<double> value_;    // U at knots
  std::vector<double> dvalue_;   // dU/ds at knots
  std::vector<double> gvalue_;   // G at knots
  std::vector<double> dgvalue_;  // dG/ds at knots
};

}  // namespace antmd
