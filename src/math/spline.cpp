#include "math/spline.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace antmd {

CubicSpline::CubicSpline(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  ANTMD_REQUIRE(x_.size() == y_.size(), "x/y size mismatch");
  ANTMD_REQUIRE(x_.size() >= 3, "spline needs at least 3 points");
  ANTMD_REQUIRE(std::is_sorted(x_.begin(), x_.end()) &&
                    std::adjacent_find(x_.begin(), x_.end()) == x_.end(),
                "x must be strictly increasing");

  // Tridiagonal solve for natural spline second derivatives.
  const size_t n = x_.size();
  y2_.assign(n, 0.0);
  std::vector<double> u(n, 0.0);
  for (size_t i = 1; i + 1 < n; ++i) {
    double sig = (x_[i] - x_[i - 1]) / (x_[i + 1] - x_[i - 1]);
    double p = sig * y2_[i - 1] + 2.0;
    y2_[i] = (sig - 1.0) / p;
    double d = (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]) -
               (y_[i] - y_[i - 1]) / (x_[i] - x_[i - 1]);
    u[i] = (6.0 * d / (x_[i + 1] - x_[i - 1]) - sig * u[i - 1]) / p;
  }
  for (size_t k = n - 1; k-- > 0;) {
    y2_[k] = y2_[k] * y2_[k + 1] + u[k];
  }
}

size_t CubicSpline::interval(double x) const {
  auto it = std::upper_bound(x_.begin(), x_.end(), x);
  if (it == x_.begin()) return 0;
  size_t i = static_cast<size_t>(it - x_.begin()) - 1;
  return std::min(i, x_.size() - 2);
}

double CubicSpline::value(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  size_t i = interval(x);
  double h = x_[i + 1] - x_[i];
  double a = (x_[i + 1] - x) / h;
  double b = (x - x_[i]) / h;
  return a * y_[i] + b * y_[i + 1] +
         ((a * a * a - a) * y2_[i] + (b * b * b - b) * y2_[i + 1]) * h * h /
             6.0;
}

double CubicSpline::derivative(double x) const {
  if (x <= x_.front() || x >= x_.back()) return 0.0;
  size_t i = interval(x);
  double h = x_[i + 1] - x_[i];
  double a = (x_[i + 1] - x) / h;
  double b = (x - x_[i]) / h;
  return (y_[i + 1] - y_[i]) / h -
         (3.0 * a * a - 1.0) / 6.0 * h * y2_[i] +
         (3.0 * b * b - 1.0) / 6.0 * h * y2_[i + 1];
}

RadialTable RadialTable::from_potential(
    const std::function<double(double)>& energy,
    const std::function<double(double)>& denergy_dr, double r_min,
    double r_cut, size_t bins, bool shift_to_zero) {
  ANTMD_REQUIRE(r_cut > r_min && r_min > 0.0, "need 0 < r_min < r_cut");
  ANTMD_REQUIRE(bins >= 8, "table needs at least 8 bins");

  RadialTable t;
  t.s_min_ = r_min * r_min;
  t.s_max_ = r_cut * r_cut;
  t.r_cut_ = r_cut;
  const size_t knots = bins + 1;
  const double ds = (t.s_max_ - t.s_min_) / static_cast<double>(bins);
  t.inv_ds_ = 1.0 / ds;
  // The basis uses the double-rounded reciprocal (matching the historical
  // `1.0 / inv_ds_` in evaluate()), not `ds`, so cached results are
  // bit-identical to recomputing it per call.
  t.ds_ = 1.0 / t.inv_ds_;

  const double shift = shift_to_zero ? energy(r_cut) : 0.0;

  t.value_.resize(knots);
  t.dvalue_.resize(knots);
  t.gvalue_.resize(knots);
  t.dgvalue_.resize(knots);

  for (size_t k = 0; k < knots; ++k) {
    double s = t.s_min_ + ds * static_cast<double>(k);
    double r = std::sqrt(s);
    double du = denergy_dr(r);
    t.value_[k] = energy(r) - shift;
    // dU/ds = dU/dr * dr/ds = dU/dr / (2 r)
    t.dvalue_[k] = du / (2.0 * r);
    // G(s) = -(1/r) dU/dr
    t.gvalue_[k] = -du / r;
  }
  // dG/ds by centered finite differences on the knots (ends one-sided).
  for (size_t k = 0; k < knots; ++k) {
    if (k == 0) {
      t.dgvalue_[k] = (t.gvalue_[1] - t.gvalue_[0]) * t.inv_ds_;
    } else if (k == knots - 1) {
      t.dgvalue_[k] = (t.gvalue_[k] - t.gvalue_[k - 1]) * t.inv_ds_;
    } else {
      t.dgvalue_[k] = (t.gvalue_[k + 1] - t.gvalue_[k - 1]) * 0.5 * t.inv_ds_;
    }
  }
  // 8 doubles (one cache line) per bin; pad the front so the first bin's
  // slot lands on a 64-byte boundary wherever the heap block starts.
  t.packed_.resize(bins * 8 + 8);
  auto base = reinterpret_cast<uintptr_t>(t.packed_.data());
  t.packed_skip_ = (64 - base % 64) % 64 / sizeof(double);
  double* packed = t.packed_.data() + t.packed_skip_;
  for (size_t k = 0; k < bins; ++k) {
    packed[8 * k + 0] = t.value_[k];
    packed[8 * k + 1] = t.dvalue_[k];
    packed[8 * k + 2] = t.gvalue_[k];
    packed[8 * k + 3] = t.dgvalue_[k];
    packed[8 * k + 4] = t.value_[k + 1];
    packed[8 * k + 5] = t.dvalue_[k + 1];
    packed[8 * k + 6] = t.gvalue_[k + 1];
    packed[8 * k + 7] = t.dgvalue_[k + 1];
  }
  return t;
}

RadialEval RadialTable::evaluate(double r2) const {
  return evaluate_inline(r2);
}

}  // namespace antmd
