#include "math/pbc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace antmd {

Box::Box(double lx, double ly, double lz) : edges_{lx, ly, lz} {
  ANTMD_REQUIRE(lx > 0 && ly > 0 && lz > 0, "box edges must be positive");
}

double Box::min_edge() const {
  return std::min({edges_.x, edges_.y, edges_.z});
}

Vec3 Box::wrap(const Vec3& r) const {
  Vec3 w = r;
  for (int d = 0; d < 3; ++d) {
    double l = edges_[d];
    w[d] -= std::floor(w[d] / l) * l;
    // floor() can return exactly l for inputs like -1e-18; clamp.
    if (w[d] >= l) w[d] -= l;
  }
  return w;
}

Vec3 Box::min_image(const Vec3& a, const Vec3& b) const {
  Vec3 d = a - b;
  for (int i = 0; i < 3; ++i) {
    double l = edges_[i];
    d[i] -= std::nearbyint(d[i] / l) * l;
  }
  return d;
}

}  // namespace antmd
