// Lane-width trait classes for the integer-SIMD nonbonded kernels.
//
// Each trait wraps one x86 vector ISA behind the same static interface so
// ff/nonbonded_simd_impl.hpp instantiates once per ISA with no #ifdef in
// the kernel body.  A trait describes a tile *block*: kRows × kCols mask
// lanes evaluated per vector op (lane l covers tile row l / kCols and
// column l % kCols within the block).
//
//   Sse41Traits   2 lanes   1 row × 2 cols  (half a tile row per op)
//   Avx2Traits    4 lanes   1 row × 4 cols  (one tile row per op)
//   Avx512Traits  8 lanes   2 rows × 4 cols (an even/odd row pair per op)
//
// Exactness contract: every double op maps to exactly one IEEE-754
// instruction on the same operands as the scalar kernel — the SIMD TUs are
// compiled with -ffp-contract=off so no mul/add pair fuses into an FMA —
// and the int64 truncating conversion matches cvttsd2si lane for lane
// (including the 0x8000... indefinite result on overflow, which is what
// the scalar static_cast compiles to on x86-64).  Under that contract the
// kernels are bit-identical to the scalar path for every input.
//
// Types:
//   VD    kLanes doubles
//   VI    kLanes int64 (fixed-point quanta)
//   Idx   kLanes int32 gather offsets (low half of a legacy-width vector)
//   Mask  per-lane predicate: all-ones double lanes on SSE/AVX2, a
//         compressed __mmask8 on AVX-512.  blend(a, b, m) == m ? b : a.
#pragma once

#include <cstdint>

#if defined(__SSE4_1__)
#include <immintrin.h>

namespace antmd::simd {

struct Sse41Traits {
  static constexpr unsigned kLanes = 2;
  static constexpr unsigned kRows = 1;
  static constexpr unsigned kCols = 2;
  using VD = __m128d;
  using VI = __m128i;
  using Idx = __m128i;
  using Mask = __m128d;

  static VD zero() { return _mm_setzero_pd(); }
  static VD bcast(double v) { return _mm_set1_pd(v); }
  /// i-side broadcast: `lo` fills the block's (single) row.
  static VD bcast_rows(double lo, double /*hi*/) { return _mm_set1_pd(lo); }
  /// j-side columns c0..c0+1 of a 4-wide group.
  static VD load_cols(const double* p, unsigned c0) {
    return _mm_loadu_pd(p + c0);
  }

  static void store(double* dst, VD v) { _mm_storeu_pd(dst, v); }
  static VD add(VD a, VD b) { return _mm_add_pd(a, b); }
  static VD sub(VD a, VD b) { return _mm_sub_pd(a, b); }
  static VD mul(VD a, VD b) { return _mm_mul_pd(a, b); }
  static VD div(VD a, VD b) { return _mm_div_pd(a, b); }
  static VD min(VD a, VD b) { return _mm_min_pd(a, b); }
  static VD max(VD a, VD b) { return _mm_max_pd(a, b); }
  /// nearbyint: round in the current (to-nearest-even) mode, no inexact.
  static VD round_cur(VD a) {
    return _mm_round_pd(a, _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
  }

  static Mask cmp_lt(VD a, VD b) { return _mm_cmplt_pd(a, b); }
  static Mask cmp_le(VD a, VD b) { return _mm_cmple_pd(a, b); }
  static Mask cmp_gt(VD a, VD b) { return _mm_cmpgt_pd(a, b); }
  static Mask cmp_ge(VD a, VD b) { return _mm_cmpge_pd(a, b); }
  static Mask cmp_eq(VD a, VD b) { return _mm_cmpeq_pd(a, b); }
  static Mask cmp_ne(VD a, VD b) { return _mm_cmpneq_pd(a, b); }
  static Mask mask_and(Mask a, Mask b) { return _mm_and_pd(a, b); }
  static Mask mask_or(Mask a, Mask b) { return _mm_or_pd(a, b); }
  static bool mask_any(Mask m) { return _mm_movemask_pd(m) != 0; }
  static VD blend(VD a, VD b, Mask m) { return _mm_blendv_pd(a, b, m); }
  /// m ? acc + c : acc (the blend-the-old-value-back conditional add).
  static VD add_masked(VD acc, VD c, Mask m) {
    return _mm_blendv_pd(acc, _mm_add_pd(acc, c), m);
  }
  /// Mask-bit `l` of `bits` selects lane l.
  static Mask mask_from_bits(unsigned bits) {
    const __m128i b = _mm_set1_epi64x(static_cast<long long>(bits));
    const __m128i lane = _mm_set_epi64x(2, 1);
    return _mm_castsi128_pd(_mm_cmpeq_epi64(_mm_and_si128(b, lane), lane));
  }

  static Idx idx_cvtt(VD v) { return _mm_cvttpd_epi32(v); }
  static VD idx_to_pd(Idx v) { return _mm_cvtepi32_pd(v); }
  static Idx idx_add(Idx a, Idx b) { return _mm_add_epi32(a, b); }
  static Idx idx_mul(Idx a, Idx b) { return _mm_mullo_epi32(a, b); }
  static Idx idx_bcast(int32_t v) { return _mm_set1_epi32(v); }
  static Idx idx_bcast_rows(int32_t lo, int32_t /*hi*/) {
    return _mm_set1_epi32(lo);
  }
  /// j-side per-column int32 loads (type ids), cols c0..c0+1.
  static Idx idx_load_cols(const uint32_t* p, unsigned c0) {
    return _mm_set_epi32(0, 0, static_cast<int32_t>(p[c0 + 1]),
                         static_cast<int32_t>(p[c0]));
  }
  /// out[k] = per-lane base[idx_l + k] for k = 0..7: each lane's spline bin
  /// is 8 contiguous doubles (one cache line), so two 16-byte loads per
  /// coefficient pair + an unpack transpose beat eight per-lane gathers.
  static void load_packed8(const double* base, Idx idx, VD out[8]) {
    const double* p0 = base + _mm_cvtsi128_si32(idx);
    const double* p1 = base + _mm_extract_epi32(idx, 1);
    for (unsigned k = 0; k < 8; k += 2) {
      const __m128d a = _mm_loadu_pd(p0 + k);
      const __m128d b = _mm_loadu_pd(p1 + k);
      out[k] = _mm_unpacklo_pd(a, b);
      out[k + 1] = _mm_unpackhi_pd(a, b);
    }
  }

  /// Truncating double -> int64, cvttsd2si semantics per lane.  Callers
  /// only pass integral values (quantize_round rounds first), so the
  /// magic-number bias conversion is exact whenever |v| < 2^51; larger,
  /// non-finite, or indefinite lanes take the scalar instruction itself.
  static VI cvtt_i64(VD v) {
    const __m128d magic = _mm_set1_pd(6755399441055744.0);  // 2^52 + 2^51
    const __m128d limit = _mm_set1_pd(2251799813685248.0);  // 2^51
    const __m128d av = _mm_andnot_pd(_mm_set1_pd(-0.0), v);
    if (_mm_movemask_pd(_mm_cmplt_pd(av, limit)) == 0x3) {
      const __m128d x = _mm_add_pd(v, magic);
      return _mm_sub_epi64(_mm_castpd_si128(x), _mm_castpd_si128(magic));
    }
    alignas(16) double t[kLanes];
    _mm_store_pd(t, v);
    return _mm_set_epi64x(static_cast<int64_t>(t[1]),
                          static_cast<int64_t>(t[0]));
  }
  static VI zero_i64() { return _mm_setzero_si128(); }
  static VI add_i64(VI a, VI b) { return _mm_add_epi64(a, b); }
  static VI sub_i64(VI a, VI b) { return _mm_sub_epi64(a, b); }
  static VI and_mask_i64(VI v, Mask m) {
    return _mm_and_si128(v, _mm_castpd_si128(m));
  }
  static void store_i64(int64_t* dst, VI v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), v);
  }
  /// Per-row horizontal sums of the int64 lanes: sums[r] = sum of row r's
  /// lanes (kRows == 1 here, so one total).  Integer adds are order-free.
  static void row_sums_i64(VI v, int64_t sums[kRows]) {
    const __m128i hi = _mm_unpackhi_epi64(v, v);
    sums[0] = _mm_cvtsi128_si64(_mm_add_epi64(v, hi));
  }
};

}  // namespace antmd::simd
#endif  // __SSE4_1__

#if defined(__AVX2__)
namespace antmd::simd {

struct Avx2Traits {
  static constexpr unsigned kLanes = 4;
  static constexpr unsigned kRows = 1;
  static constexpr unsigned kCols = 4;
  using VD = __m256d;
  using VI = __m256i;
  using Idx = __m128i;
  using Mask = __m256d;

  static VD zero() { return _mm256_setzero_pd(); }
  static VD bcast(double v) { return _mm256_set1_pd(v); }
  static VD bcast_rows(double lo, double /*hi*/) { return _mm256_set1_pd(lo); }
  static VD load_cols(const double* p, unsigned /*c0*/) {
    return _mm256_loadu_pd(p);
  }

  static void store(double* dst, VD v) { _mm256_storeu_pd(dst, v); }
  static VD add(VD a, VD b) { return _mm256_add_pd(a, b); }
  static VD sub(VD a, VD b) { return _mm256_sub_pd(a, b); }
  static VD mul(VD a, VD b) { return _mm256_mul_pd(a, b); }
  static VD div(VD a, VD b) { return _mm256_div_pd(a, b); }
  static VD min(VD a, VD b) { return _mm256_min_pd(a, b); }
  static VD max(VD a, VD b) { return _mm256_max_pd(a, b); }
  static VD round_cur(VD a) {
    return _mm256_round_pd(a, _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
  }

  static Mask cmp_lt(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static Mask cmp_le(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  static Mask cmp_gt(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static Mask cmp_ge(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  static Mask cmp_eq(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
  /// IEEE != (unordered-true), like the scalar kernel's qq != 0.0.
  static Mask cmp_ne(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_NEQ_UQ); }
  static Mask mask_and(Mask a, Mask b) { return _mm256_and_pd(a, b); }
  static Mask mask_or(Mask a, Mask b) { return _mm256_or_pd(a, b); }
  static bool mask_any(Mask m) { return _mm256_movemask_pd(m) != 0; }
  static VD blend(VD a, VD b, Mask m) { return _mm256_blendv_pd(a, b, m); }
  /// m ? acc + c : acc (the blend-the-old-value-back conditional add).
  static VD add_masked(VD acc, VD c, Mask m) {
    return _mm256_blendv_pd(acc, _mm256_add_pd(acc, c), m);
  }
  static Mask mask_from_bits(unsigned bits) {
    const __m256i b = _mm256_set1_epi64x(static_cast<long long>(bits));
    const __m256i lane = _mm256_set_epi64x(8, 4, 2, 1);
    return _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(b, lane), lane));
  }

  static Idx idx_cvtt(VD v) { return _mm256_cvttpd_epi32(v); }
  static VD idx_to_pd(Idx v) { return _mm256_cvtepi32_pd(v); }
  static Idx idx_add(Idx a, Idx b) { return _mm_add_epi32(a, b); }
  static Idx idx_mul(Idx a, Idx b) { return _mm_mullo_epi32(a, b); }
  static Idx idx_bcast(int32_t v) { return _mm_set1_epi32(v); }
  static Idx idx_bcast_rows(int32_t lo, int32_t /*hi*/) {
    return _mm_set1_epi32(lo);
  }
  static Idx idx_load_cols(const uint32_t* p, unsigned /*c0*/) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  /// out[k] = per-lane base[idx_l + k] for k = 0..7: each lane's spline bin
  /// is 8 contiguous doubles, so two 32-byte loads per lane + two 4x4
  /// transposes beat sixteen vgatherdpd lane fetches.
  static void load_packed8(const double* base, Idx idx, VD out[8]) {
    alignas(16) int32_t off[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(off), idx);
    for (unsigned half = 0; half < 2; ++half) {
      const unsigned k = half * 4;
      const __m256d r0 = _mm256_loadu_pd(base + off[0] + k);
      const __m256d r1 = _mm256_loadu_pd(base + off[1] + k);
      const __m256d r2 = _mm256_loadu_pd(base + off[2] + k);
      const __m256d r3 = _mm256_loadu_pd(base + off[3] + k);
      const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
      const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
      const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
      const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
      out[k + 0] = _mm256_permute2f128_pd(t0, t2, 0x20);
      out[k + 1] = _mm256_permute2f128_pd(t1, t3, 0x20);
      out[k + 2] = _mm256_permute2f128_pd(t0, t2, 0x31);
      out[k + 3] = _mm256_permute2f128_pd(t1, t3, 0x31);
    }
  }

  /// Truncating double -> int64, cvttsd2si semantics per lane; see
  /// Sse41Traits::cvtt_i64 for the integral-input magic-number contract.
  static VI cvtt_i64(VD v) {
    const __m256d magic = _mm256_set1_pd(6755399441055744.0);  // 2^52 + 2^51
    const __m256d limit = _mm256_set1_pd(2251799813685248.0);  // 2^51
    const __m256d av = _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
    if (_mm256_movemask_pd(_mm256_cmp_pd(av, limit, _CMP_LT_OQ)) == 0xf) {
      const __m256d x = _mm256_add_pd(v, magic);
      return _mm256_sub_epi64(_mm256_castpd_si256(x),
                              _mm256_castpd_si256(magic));
    }
    alignas(32) double t[kLanes];
    _mm256_store_pd(t, v);
    return _mm256_set_epi64x(
        static_cast<int64_t>(t[3]), static_cast<int64_t>(t[2]),
        static_cast<int64_t>(t[1]), static_cast<int64_t>(t[0]));
  }
  static VI zero_i64() { return _mm256_setzero_si256(); }
  static VI add_i64(VI a, VI b) { return _mm256_add_epi64(a, b); }
  static VI sub_i64(VI a, VI b) { return _mm256_sub_epi64(a, b); }
  static VI and_mask_i64(VI v, Mask m) {
    return _mm256_and_si256(v, _mm256_castpd_si256(m));
  }
  static void store_i64(int64_t* dst, VI v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
  }
  /// Horizontal sum of the 4 int64 lanes into sums[0] (kRows == 1).
  static void row_sums_i64(VI v, int64_t sums[kRows]) {
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i s = _mm_add_epi64(lo, hi);
    sums[0] = _mm_cvtsi128_si64(_mm_add_epi64(s, _mm_unpackhi_epi64(s, s)));
  }
};

}  // namespace antmd::simd
#endif  // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512DQ__)
namespace antmd::simd {

struct Avx512Traits {
  static constexpr unsigned kLanes = 8;
  static constexpr unsigned kRows = 2;
  static constexpr unsigned kCols = 4;
  using VD = __m512d;
  using VI = __m512i;
  using Idx = __m256i;
  using Mask = __mmask8;

  static VD zero() { return _mm512_setzero_pd(); }
  static VD bcast(double v) { return _mm512_set1_pd(v); }
  /// Row a in lanes 0-3, row a+1 in lanes 4-7.
  static VD bcast_rows(double lo, double hi) {
    return _mm512_insertf64x4(_mm512_set1_pd(lo), _mm256_set1_pd(hi), 1);
  }
  /// The 4 j-group columns, replicated into both row halves.
  static VD load_cols(const double* p, unsigned /*c0*/) {
    const __m256d v = _mm256_loadu_pd(p);
    return _mm512_insertf64x4(_mm512_castpd256_pd512(v), v, 1);
  }

  static void store(double* dst, VD v) { _mm512_storeu_pd(dst, v); }
  static VD add(VD a, VD b) { return _mm512_add_pd(a, b); }
  static VD sub(VD a, VD b) { return _mm512_sub_pd(a, b); }
  static VD mul(VD a, VD b) { return _mm512_mul_pd(a, b); }
  static VD div(VD a, VD b) { return _mm512_div_pd(a, b); }
  static VD min(VD a, VD b) { return _mm512_min_pd(a, b); }
  static VD max(VD a, VD b) { return _mm512_max_pd(a, b); }
  static VD round_cur(VD a) {
    return _mm512_roundscale_pd(
        a, _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
  }

  static Mask cmp_lt(VD a, VD b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
  }
  static Mask cmp_le(VD a, VD b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_LE_OQ);
  }
  static Mask cmp_gt(VD a, VD b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_GT_OQ);
  }
  static Mask cmp_ge(VD a, VD b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_GE_OQ);
  }
  static Mask cmp_eq(VD a, VD b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_EQ_OQ);
  }
  static Mask cmp_ne(VD a, VD b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_NEQ_UQ);
  }
  static Mask mask_and(Mask a, Mask b) {
    return static_cast<Mask>(a & b);
  }
  static Mask mask_or(Mask a, Mask b) { return static_cast<Mask>(a | b); }
  static bool mask_any(Mask m) { return m != 0; }
  static VD blend(VD a, VD b, Mask m) {
    return _mm512_mask_blend_pd(m, a, b);
  }
  /// m ? acc + c : acc, fused into one masked add.
  static VD add_masked(VD acc, VD c, Mask m) {
    return _mm512_mask_add_pd(acc, m, acc, c);
  }
  static Mask mask_from_bits(unsigned bits) {
    return static_cast<Mask>(bits);
  }

  static Idx idx_cvtt(VD v) { return _mm512_cvttpd_epi32(v); }
  static VD idx_to_pd(Idx v) { return _mm512_cvtepi32_pd(v); }
  static Idx idx_add(Idx a, Idx b) { return _mm256_add_epi32(a, b); }
  static Idx idx_mul(Idx a, Idx b) { return _mm256_mullo_epi32(a, b); }
  static Idx idx_bcast(int32_t v) { return _mm256_set1_epi32(v); }
  static Idx idx_bcast_rows(int32_t lo, int32_t hi) {
    return _mm256_set_m128i(_mm_set1_epi32(hi), _mm_set1_epi32(lo));
  }
  static Idx idx_load_cols(const uint32_t* p, unsigned /*c0*/) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_set_m128i(v, v);
  }
  /// out[k] = per-lane base[idx_l + k] for k = 0..7: each lane's spline bin
  /// is one 64-byte cache line, so one full-width load per lane + an 8x8
  /// unpack/shuffle transpose beats sixty-four vgatherdpd lane fetches.
  static void load_packed8(const double* base, Idx idx, VD out[8]) {
    alignas(32) int32_t off[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(off), idx);
    const __m512d r0 = _mm512_loadu_pd(base + off[0]);
    const __m512d r1 = _mm512_loadu_pd(base + off[1]);
    const __m512d r2 = _mm512_loadu_pd(base + off[2]);
    const __m512d r3 = _mm512_loadu_pd(base + off[3]);
    const __m512d r4 = _mm512_loadu_pd(base + off[4]);
    const __m512d r5 = _mm512_loadu_pd(base + off[5]);
    const __m512d r6 = _mm512_loadu_pd(base + off[6]);
    const __m512d r7 = _mm512_loadu_pd(base + off[7]);
    const __m512d t0 = _mm512_unpacklo_pd(r0, r1);
    const __m512d t1 = _mm512_unpackhi_pd(r0, r1);
    const __m512d t2 = _mm512_unpacklo_pd(r2, r3);
    const __m512d t3 = _mm512_unpackhi_pd(r2, r3);
    const __m512d t4 = _mm512_unpacklo_pd(r4, r5);
    const __m512d t5 = _mm512_unpackhi_pd(r4, r5);
    const __m512d t6 = _mm512_unpacklo_pd(r6, r7);
    const __m512d t7 = _mm512_unpackhi_pd(r6, r7);
    // 128-bit lane shuffles: u0 holds coefficients 0/4 of lanes 0-3, u1 of
    // lanes 4-7, and so on; a final shuffle splits the coefficient pairs.
    const __m512d u0 = _mm512_shuffle_f64x2(t0, t2, 0x88);
    const __m512d u1 = _mm512_shuffle_f64x2(t4, t6, 0x88);
    const __m512d u2 = _mm512_shuffle_f64x2(t1, t3, 0x88);
    const __m512d u3 = _mm512_shuffle_f64x2(t5, t7, 0x88);
    const __m512d u4 = _mm512_shuffle_f64x2(t0, t2, 0xdd);
    const __m512d u5 = _mm512_shuffle_f64x2(t4, t6, 0xdd);
    const __m512d u6 = _mm512_shuffle_f64x2(t1, t3, 0xdd);
    const __m512d u7 = _mm512_shuffle_f64x2(t5, t7, 0xdd);
    out[0] = _mm512_shuffle_f64x2(u0, u1, 0x88);
    out[1] = _mm512_shuffle_f64x2(u2, u3, 0x88);
    out[2] = _mm512_shuffle_f64x2(u4, u5, 0x88);
    out[3] = _mm512_shuffle_f64x2(u6, u7, 0x88);
    out[4] = _mm512_shuffle_f64x2(u0, u1, 0xdd);
    out[5] = _mm512_shuffle_f64x2(u2, u3, 0xdd);
    out[6] = _mm512_shuffle_f64x2(u4, u5, 0xdd);
    out[7] = _mm512_shuffle_f64x2(u6, u7, 0xdd);
  }

  static VI cvtt_i64(VD v) { return _mm512_cvttpd_epi64(v); }
  static VI zero_i64() { return _mm512_setzero_si512(); }
  static VI add_i64(VI a, VI b) { return _mm512_add_epi64(a, b); }
  static VI sub_i64(VI a, VI b) { return _mm512_sub_epi64(a, b); }
  static VI and_mask_i64(VI v, Mask m) {
    return _mm512_maskz_mov_epi64(m, v);
  }
  static void store_i64(int64_t* dst, VI v) {
    _mm512_storeu_si512(dst, v);
  }
  /// Per-row horizontal sums: lanes 0-3 are row 0, lanes 4-7 row 1.
  static void row_sums_i64(VI v, int64_t sums[kRows]) {
    const __m256i lo = _mm512_castsi512_si256(v);
    const __m256i hi = _mm512_extracti64x4_epi64(v, 1);
    const __m128i s0 = _mm_add_epi64(_mm256_castsi256_si128(lo),
                                     _mm256_extracti128_si256(lo, 1));
    const __m128i s1 = _mm_add_epi64(_mm256_castsi256_si128(hi),
                                     _mm256_extracti128_si256(hi, 1));
    sums[0] = _mm_cvtsi128_si64(_mm_add_epi64(s0, _mm_unpackhi_epi64(s0, s0)));
    sums[1] = _mm_cvtsi128_si64(_mm_add_epi64(s1, _mm_unpackhi_epi64(s1, s1)));
  }
};

}  // namespace antmd::simd
#endif  // __AVX512F__ && __AVX512DQ__
