#include "math/fixed.hpp"

#include "util/error.hpp"

namespace antmd {

void FixedForceArray::merge(const FixedForceArray& other) {
  ANTMD_REQUIRE(other.data_.size() == data_.size(),
                "merging force arrays of different sizes");
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i][0] += other.data_[i][0];
    data_[i][1] += other.data_[i][1];
    data_[i][2] += other.data_[i][2];
  }
}

std::vector<Vec3> FixedForceArray::to_vectors() const {
  std::vector<Vec3> out(data_.size());
  for (size_t i = 0; i < data_.size(); ++i) out[i] = force(i);
  return out;
}

}  // namespace antmd
