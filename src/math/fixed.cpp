#include "math/fixed.hpp"

#include "util/error.hpp"

namespace antmd {

void FixedForceArray::merge(const FixedForceArray& other) {
  ANTMD_REQUIRE(other.data_.size() == data_.size(),
                "merging force arrays of different sizes");
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i][0] += other.data_[i][0];
    data_[i][1] += other.data_[i][1];
    data_[i][2] += other.data_[i][2];
  }
}

void FixedForceArray::drain_into(FixedForceArray& dst) {
  ANTMD_REQUIRE(dst.data_.size() == data_.size(),
                "draining force arrays of different sizes");
  for (size_t i = 0; i < data_.size(); ++i) {
    dst.data_[i][0] += data_[i][0];
    dst.data_[i][1] += data_[i][1];
    dst.data_[i][2] += data_[i][2];
    data_[i] = {0, 0, 0};
  }
}

void FixedForceArray::accumulate_range(const FixedForceArray& src, size_t lo,
                                       size_t hi) {
  ANTMD_REQUIRE(src.data_.size() == data_.size() && hi <= data_.size() &&
                    lo <= hi,
                "accumulate_range out of bounds");
  for (size_t i = lo; i < hi; ++i) {
    data_[i][0] += src.data_[i][0];
    data_[i][1] += src.data_[i][1];
    data_[i][2] += src.data_[i][2];
  }
}

std::vector<Vec3> FixedForceArray::to_vectors() const {
  std::vector<Vec3> out(data_.size());
  for (size_t i = 0; i < data_.size(); ++i) out[i] = force(i);
  return out;
}

}  // namespace antmd
