// Unit system and physical constants.
//
// antmd uses the AKMA-style unit system common in biomolecular MD codes:
//   length  : Angstrom (Å)
//   energy  : kcal/mol
//   mass    : atomic mass unit (amu)
//   charge  : elementary charge (e)
//   time    : internal unit = sqrt(amu Å² / (kcal/mol)) ≈ 48.8882 fs
// User-facing APIs take femtoseconds and convert at the boundary.
#pragma once

namespace antmd::units {

/// Boltzmann constant in kcal/(mol K).
inline constexpr double kBoltzmann = 0.001987204259;

/// Coulomb constant e²→kcal Å/mol: q1 q2 kCoulomb / r.
inline constexpr double kCoulomb = 332.06371;

/// Femtoseconds per internal time unit.
inline constexpr double kFsPerInternalTime = 48.88821;

/// Converts a timestep given in fs to internal time units.
inline constexpr double fs_to_internal(double fs) {
  return fs / kFsPerInternalTime;
}

/// Converts internal time units to fs.
inline constexpr double internal_to_fs(double t) {
  return t * kFsPerInternalTime;
}

/// Converts internal time units to ns.
inline constexpr double internal_to_ns(double t) {
  return internal_to_fs(t) * 1e-6;
}

/// Atmospheres per internal pressure unit (kcal/mol/Å³).
/// 1 kcal/mol/Å³ = 68568.4 atm.
inline constexpr double kAtmPerInternalPressure = 68568.4;

}  // namespace antmd::units
