// Commodity-cluster performance model — the "previous state of the art"
// the paper's abstract compares against (a Desmond/GROMACS-class MD code on
// a circa-2012 InfiniBand cluster).
//
// It consumes the SAME per-node workload counts the machine model uses, so
// speedup comparisons are apples-to-apples: identical physics, identical
// decomposition, different hardware model.  Differences from the
// special-purpose machine:
//   * pair interactions run on general-purpose cores (no 32-wide hardwired
//     pipelines) and therefore do NOT overlap with bonded work,
//   * network latency is microseconds, not tens of nanoseconds,
//   * there is no fine-grained hardware barrier (software allreduce).
#pragma once

#include <string>

#include "machine/timing.hpp"

namespace antmd::baseline {

struct ClusterConfig {
  std::string name = "commodity-512";
  /// MPI ranks (one per core for the workloads we model).
  size_t ranks = 512;
  /// Tabulated-pair evaluations per second per rank: a ~3 GHz 2012 core
  /// spends ~135 cycles/pair once gather/scatter and list traversal are
  /// counted — calibrated so 512 ranks land in the published Desmond/NAMD
  /// performance envelope for DHFR-class systems.
  double pair_rate_per_rank = 2.2e7;
  /// General flops per rank (AVX, ~4 doubles @ 3 GHz).
  double flops_per_rank = 1.2e10;
  /// Per-node NIC bandwidth (IB QDR).
  double nic_bandwidth_Bps = 3.2e9;
  /// Point-to-point latency.
  double latency_s = 2.0e-6;
  /// Per-message software overhead.
  double message_overhead_s = 0.5e-6;
  /// Wall power per rank: a 2012 dual-socket node (~350 W with its share
  /// of switch/cooling) hosting ~8 ranks.
  double power_per_rank_w = 45.0;

  /// Whole-cluster wall power (kW).
  [[nodiscard]] double cluster_power_kw() const {
    return static_cast<double>(ranks) * power_per_rank_w / 1000.0;
  }

  /// Latency of a software barrier / small allreduce across all ranks.
  [[nodiscard]] double barrier_s() const {
    double log2r = 1.0;
    size_t r = ranks;
    while (r > 1) {
      r >>= 1;
      log2r += 1.0;
    }
    return latency_s * log2r;
  }
};

/// A 2012-era 512-core InfiniBand cluster.
[[nodiscard]] ClusterConfig commodity_cluster(size_t ranks = 512);

class ClusterModel {
 public:
  explicit ClusterModel(ClusterConfig config) : config_(std::move(config)) {}

  /// Models one MD step from the same workload counts the machine model
  /// consumes.  work.nodes.size() should equal config.ranks for a fair
  /// comparison (the bench harnesses arrange this).
  [[nodiscard]] machine::StepBreakdown step_time(
      const machine::StepWork& work) const;

  [[nodiscard]] const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

}  // namespace antmd::baseline
