#include "baseline/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace antmd::baseline {

ClusterConfig commodity_cluster(size_t ranks) {
  ClusterConfig cfg;
  cfg.ranks = ranks;
  cfg.name = "commodity-" + std::to_string(ranks);
  return cfg;
}

machine::StepBreakdown ClusterModel::step_time(
    const machine::StepWork& work) const {
  ANTMD_REQUIRE(!work.nodes.empty(), "workload must cover at least 1 rank");
  machine::StepBreakdown out;

  double worst_pair = 0, worst_force = 0, worst_update = 0, worst_comm = 0;
  for (const auto& n : work.nodes) {
    double t_pair = static_cast<double>(n.pairs) / config_.pair_rate_per_rank;
    double t_force = n.gc_force_flops / config_.flops_per_rank;
    double t_update = n.gc_update_flops / config_.flops_per_rank;
    double t_comm =
        (n.import_bytes + n.export_bytes) / config_.nic_bandwidth_Bps +
        static_cast<double>(std::max<size_t>(n.messages, 1)) *
            (config_.latency_s + config_.message_overhead_s);
    worst_pair = std::max(worst_pair, t_pair);
    worst_force = std::max(worst_force, t_force);
    worst_update = std::max(worst_update, t_update);
    worst_comm = std::max(worst_comm, t_comm);
  }
  out.pair_phase = worst_pair;
  out.gc_force_phase = worst_force;
  // No hardwired/programmable overlap on a CPU: pair and bonded serialize.
  out.interaction = worst_pair + worst_force;
  out.multicast = worst_comm;
  out.reduce = worst_comm;  // halo exchange runs both directions
  out.update = worst_update;

  if (work.kspace.active) {
    const double n_ranks = static_cast<double>(work.nodes.size());
    double grid_flops = static_cast<double>(work.kspace.grid_points) * 14.0;
    double spread_flops = static_cast<double>(work.kspace.charges) *
                          work.kspace.stencil_points * 7.0;
    double interp_flops = static_cast<double>(work.kspace.charges) *
                          work.kspace.stencil_points * 9.0;
    out.kspace_spread = spread_flops / n_ranks / config_.flops_per_rank;
    out.kspace_interp = interp_flops / n_ranks / config_.flops_per_rank;
    out.kspace_convolve = grid_flops / n_ranks / config_.flops_per_rank;
    out.kspace_fft_compute =
        work.kspace.fft_flops / n_ranks / config_.flops_per_rank;
    if (work.nodes.size() > 1) {
      // MPI all-to-all transposes: bandwidth over NICs plus latency that
      // grows with rank count — the classic PME scaling wall.
      double transpose_bytes =
          4.0 * static_cast<double>(work.kspace.grid_points) * 16.0;
      double aggregate_bw = config_.nic_bandwidth_Bps * n_ranks / 2.0;
      double msgs = 4.0 * std::sqrt(n_ranks);
      out.kspace_fft_comm =
          transpose_bytes / aggregate_bw +
          msgs * (config_.latency_s + config_.message_overhead_s);
    }
  }

  out.sync = config_.barrier_s();
  out.total = out.multicast + out.interaction + out.reduce + out.update +
              out.kspace_total() + out.sync;
  return out;
}

}  // namespace antmd::baseline
