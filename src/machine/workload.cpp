#include "machine/workload.hpp"

#include <algorithm>
#include <cmath>

#include "fft/fft3d.hpp"
#include "util/error.hpp"

namespace antmd::machine {
namespace {

constexpr double kWaterDensityMol = 0.0334;  // molecules/Å³

size_t next_pow2(double x) {
  size_t n = 1;
  while (static_cast<double>(n) < x) n <<= 1;
  return n;
}

}  // namespace

SystemStats SystemStats::water(size_t n_molecules, bool rigid,
                               bool four_site) {
  SystemStats s;
  const size_t sites = four_site ? 4 : 3;
  s.atoms = n_molecules * sites;
  const double volume = static_cast<double>(n_molecules) / kWaterDensityMol;
  s.box_edge = std::cbrt(volume);
  s.number_density = static_cast<double>(s.atoms) / volume;
  if (rigid) {
    s.constraints = 3 * n_molecules;
  } else {
    s.bonds = 2 * n_molecules;
    s.angles = n_molecules;
  }
  s.virtual_sites = four_site ? n_molecules : 0;
  s.charged_atoms = s.atoms;  // all water sites carry charge (O or M + H)
  if (four_site) s.charged_atoms = 3 * n_molecules;  // O is neutral
  return s;
}

SystemStats SystemStats::lj_fluid(size_t n_atoms, double density) {
  SystemStats s;
  s.atoms = n_atoms;
  s.number_density = density;
  s.box_edge = std::cbrt(static_cast<double>(n_atoms) / density);
  return s;
}

double SystemStats::pairs_per_atom(double cutoff) const {
  // Half of the neighbours within the cutoff sphere; subtract a small
  // allowance for intramolecular exclusions (bonded neighbours are inside
  // the sphere and excluded).
  double neighbours =
      number_density * 4.0 / 3.0 * M_PI * cutoff * cutoff * cutoff;
  double excluded_per_atom =
      atoms > 0 ? 2.0 * static_cast<double>(bonds + angles + constraints) /
                      static_cast<double>(atoms)
                : 0.0;
  return std::max(0.0, (neighbours - excluded_per_atom)) / 2.0;
}

StepWork estimate_step_work(const SystemStats& stats, size_t nodes,
                            const WorkloadParams& params) {
  ANTMD_REQUIRE(nodes >= 1, "need at least one node");
  ANTMD_REQUIRE(stats.atoms > 0 && stats.number_density > 0,
                "empty system stats");

  GcCosts costs;
  StepWork work;
  work.nodes.resize(nodes);

  const double atoms_per_node =
      static_cast<double>(stats.atoms) / static_cast<double>(nodes);
  const double pairs_per_node =
      static_cast<double>(stats.atoms) * stats.pairs_per_atom(params.cutoff) /
      static_cast<double>(nodes);

  // Home boxes: cube-root decomposition of the (cubic) box.
  const double nodes_per_edge = std::cbrt(static_cast<double>(nodes));
  const double home_edge = stats.box_edge / nodes_per_edge;
  // Import region: half-shell of thickness rc dilating the home box.
  const double dilated = home_edge + params.cutoff;
  const double import_volume =
      std::max(0.0, (dilated * dilated * dilated -
                     home_edge * home_edge * home_edge)) /
      2.0;
  // The import cannot exceed the rest of the system.
  const double import_atoms =
      std::min(stats.number_density * import_volume,
               static_cast<double>(stats.atoms) - atoms_per_node);
  const size_t neighbours_contacted = nodes > 1 ? 13 : 0;  // half shell of 26

  const double per_node_scale = 1.0 / static_cast<double>(nodes);
  const double gc_force =
      (stats.bonds * costs.bond + stats.angles * costs.angle +
       stats.dihedrals * costs.dihedral + stats.pairs14 * costs.pair14 +
       stats.restraints * costs.restraint +
       stats.virtual_sites * costs.vsite_construct) *
      per_node_scale;
  const double gc_update =
      (static_cast<double>(stats.atoms) *
           (costs.integrate_atom + costs.thermostat_atom) +
       stats.constraints * 3.0 * costs.constraint_iteration +
       stats.virtual_sites * costs.vsite_spread) *
      per_node_scale;

  for (size_t n = 0; n < nodes; ++n) {
    NodeWork& nw = work.nodes[n];
    // The busiest node gets the imbalance factor; the rest the mean (the
    // timing model takes the max, so only the busiest matters).
    double f = (n == 0) ? params.imbalance : 1.0;
    nw.pairs = static_cast<size_t>(pairs_per_node * f);
    nw.pairs_examined =
        static_cast<size_t>(pairs_per_node * f * params.candidate_ratio);
    nw.gc_force_flops = gc_force * f;
    nw.gc_update_flops = gc_update * f;
    nw.import_bytes = (nodes > 1) ? import_atoms * 12.0 * f : 0.0;
    nw.export_bytes = (nodes > 1) ? import_atoms * 12.0 * f : 0.0;
    nw.messages = neighbours_contacted;
  }

  if (params.kspace_active && stats.charged_atoms > 0) {
    size_t grid_edge = next_pow2(stats.box_edge / params.grid_spacing);
    work.kspace.active = true;
    work.kspace.grid_points = grid_edge * grid_edge * grid_edge;
    work.kspace.charges = stats.charged_atoms;
    work.kspace.stencil_points = params.spread_stencil;
    work.kspace.fft_flops =
        2.0 * estimate_fft_cost(grid_edge, grid_edge, grid_edge, 1).flops;
  }
  work.tempering_decisions = params.tempering_decisions;
  return work;
}

}  // namespace antmd::machine
