// 3D torus interconnect topology: node coordinates, shortest-path hop
// counts, and aggregate bandwidth figures used by the timing model.
#pragma once

#include <array>
#include <cstddef>

#include "machine/config.hpp"

namespace antmd::machine {

using NodeCoord = std::array<int, 3>;

class TorusTopology {
 public:
  explicit TorusTopology(const MachineConfig& config);

  [[nodiscard]] size_t node_count() const { return count_; }
  [[nodiscard]] const std::array<int, 3>& dims() const { return dims_; }

  /// Linear id <-> coordinates (x fastest).
  [[nodiscard]] size_t id_of(const NodeCoord& c) const;
  [[nodiscard]] NodeCoord coord_of(size_t id) const;

  /// Minimum hop count between two nodes (per-axis wrap-around shortest).
  [[nodiscard]] int hops(size_t a, size_t b) const;

  /// Maximum hop count between any two nodes (network diameter).
  [[nodiscard]] int diameter() const;

  /// Mean hop count over all ordered pairs (uniform traffic).
  [[nodiscard]] double mean_hops() const;

  /// Bisection bandwidth in bytes/s (links crossing the worst mid-plane,
  /// both directions).
  [[nodiscard]] double bisection_bandwidth_Bps(const MachineConfig& c) const;

 private:
  std::array<int, 3> dims_;
  size_t count_;
};

}  // namespace antmd::machine
