// 3D torus interconnect topology: node coordinates, shortest-path hop
// counts, and aggregate bandwidth figures used by the timing model.
#pragma once

#include <array>
#include <cstddef>

#include "machine/config.hpp"

namespace antmd::machine {

using NodeCoord = std::array<int, 3>;

class TorusTopology {
 public:
  explicit TorusTopology(const MachineConfig& config);

  [[nodiscard]] size_t node_count() const { return count_; }
  [[nodiscard]] const std::array<int, 3>& dims() const { return dims_; }

  /// Linear id <-> coordinates (x fastest).
  [[nodiscard]] size_t id_of(const NodeCoord& c) const;
  [[nodiscard]] NodeCoord coord_of(size_t id) const;

  /// Minimum hop count between two nodes (per-axis wrap-around shortest).
  [[nodiscard]] int hops(size_t a, size_t b) const;

  // --- directed links ---------------------------------------------------------
  // Shared id convention for the 6 directed links leaving each node
  // (axis 0..2 × direction ±), used by the contention model and the
  // reliable-transport layer so a down-marked link means the same wire to
  // both.
  [[nodiscard]] size_t link_count() const { return count_ * 6; }
  [[nodiscard]] size_t link_id(size_t from, int axis, int sign) const {
    return from * 6 + static_cast<size_t>(axis) * 2 + (sign > 0 ? 0 : 1);
  }
  [[nodiscard]] size_t link_source(size_t link) const { return link / 6; }
  [[nodiscard]] int link_axis(size_t link) const {
    return static_cast<int>((link % 6) / 2);
  }
  [[nodiscard]] int link_sign(size_t link) const {
    return (link % 2) == 0 ? 1 : -1;
  }

  /// Maximum hop count between any two nodes (network diameter).
  [[nodiscard]] int diameter() const;

  /// Mean hop count over all ordered pairs (uniform traffic).
  [[nodiscard]] double mean_hops() const;

  /// Bisection bandwidth in bytes/s (links crossing the worst mid-plane,
  /// both directions).
  [[nodiscard]] double bisection_bandwidth_Bps(const MachineConfig& c) const;

 private:
  std::array<int, 3> dims_;
  size_t count_;
};

}  // namespace antmd::machine
