#include "machine/contention.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace antmd::machine {
namespace {

/// Halo volume split: 6 faces carry most of the import shell, 12 edges
/// less, 8 corners least (cutoff-shell geometry).
constexpr double kFaceShare = 0.70 / 6.0;
constexpr double kEdgeShare = 0.25 / 12.0;
constexpr double kCornerShare = 0.05 / 8.0;

}  // namespace

LinkContentionModel::LinkContentionModel(const MachineConfig& config)
    : config_(config), torus_(config) {
  config_.validate();
}

ContentionResult LinkContentionModel::multicast_time(
    const std::vector<NodeWork>& nodes,
    std::vector<double>* link_bytes_out) const {
  ANTMD_REQUIRE(nodes.size() == torus_.node_count(),
                "node work must cover the whole torus");
  const auto& dims = torus_.dims();

  // Route into the caller's buffer when one is supplied, so the profiler
  // gets the per-link picture without a second routing pass.
  std::vector<double> local_bytes;
  std::vector<double>& link_bytes =
      link_bytes_out ? *link_bytes_out : local_bytes;
  link_bytes.assign(torus_.node_count() * 6, 0.0);

  struct Message {
    std::vector<size_t> links;  ///< directed links along its route
    double bytes = 0.0;
    int hops = 0;
  };
  std::vector<Message> messages;

  auto wrap = [&](int c, int n) {
    int m = c % n;
    return m < 0 ? m + n : m;
  };

  // Route src -> dst dimension-ordered, one hop per unit offset.
  auto route = [&](size_t src, const std::array<int, 3>& offset,
                   double bytes) {
    if (bytes <= 0.0) return;
    Message msg;
    msg.bytes = bytes;
    NodeCoord at = torus_.coord_of(src);
    for (int axis = 0; axis < 3; ++axis) {
      int steps = offset[axis];
      if (steps == 0) continue;
      int sign = steps >= 0 ? 1 : -1;
      int hops = std::abs(steps);
      // Redundant-direction reroute: when the first hop of this leg would
      // cross a down-marked link, go the other way around the ring.
      if (link_down(torus_.link_id(torus_.id_of(at), axis, sign)) &&
          dims[axis] > 1) {
        sign = -sign;
        hops = dims[axis] - hops;
      }
      for (int s = 0; s < hops; ++s) {
        size_t from = torus_.id_of(at);
        msg.links.push_back(torus_.link_id(from, axis, sign));
        at[axis] = wrap(at[axis] + sign, dims[axis]);
        ++msg.hops;
      }
    }
    for (size_t l : msg.links) link_bytes[l] += msg.bytes;
    messages.push_back(std::move(msg));
  };

  for (size_t n = 0; n < nodes.size(); ++n) {
    double halo = nodes[n].import_bytes;
    if (halo <= 0.0) continue;
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          int nonzero = (dx != 0) + (dy != 0) + (dz != 0);
          double share = nonzero == 1 ? kFaceShare
                         : nonzero == 2 ? kEdgeShare
                                        : kCornerShare;
          route(n, {dx, dy, dz}, halo * share);
        }
      }
    }
  }

  ContentionResult out;
  if (messages.empty()) return out;

  for (double b : link_bytes) {
    if (b > 0.0) {
      out.max_link_bytes = std::max(out.max_link_bytes, b);
      out.mean_link_bytes += b;
      ++out.links_used;
    }
  }
  if (out.links_used) {
    out.mean_link_bytes /= static_cast<double>(out.links_used);
  }

  // Each message completes no earlier than its bottleneck link drains,
  // plus per-hop latency and injection overhead.
  for (const Message& m : messages) {
    double bottleneck = 0.0;
    for (size_t l : m.links) {
      bottleneck = std::max(bottleneck,
                            link_bytes[l] / config_.link_bandwidth_Bps);
    }
    double t = bottleneck + m.hops * config_.hop_latency_s +
               config_.message_overhead_s;
    out.phase_time_s = std::max(out.phase_time_s, t);
  }
  return out;
}

}  // namespace antmd::machine
