#include "machine/torus.hpp"

#include <algorithm>
#include <cmath>

namespace antmd::machine {
namespace {

int axis_hops(int a, int b, int n) {
  int d = std::abs(a - b);
  return std::min(d, n - d);
}

}  // namespace

TorusTopology::TorusTopology(const MachineConfig& config)
    : dims_(config.torus), count_(config.node_count()) {}

size_t TorusTopology::id_of(const NodeCoord& c) const {
  return static_cast<size_t>(c[0]) +
         static_cast<size_t>(dims_[0]) *
             (static_cast<size_t>(c[1]) +
              static_cast<size_t>(dims_[1]) * static_cast<size_t>(c[2]));
}

NodeCoord TorusTopology::coord_of(size_t id) const {
  int x = static_cast<int>(id % dims_[0]);
  int y = static_cast<int>((id / dims_[0]) % dims_[1]);
  int z = static_cast<int>(id / (static_cast<size_t>(dims_[0]) * dims_[1]));
  return {x, y, z};
}

int TorusTopology::hops(size_t a, size_t b) const {
  NodeCoord ca = coord_of(a);
  NodeCoord cb = coord_of(b);
  return axis_hops(ca[0], cb[0], dims_[0]) +
         axis_hops(ca[1], cb[1], dims_[1]) +
         axis_hops(ca[2], cb[2], dims_[2]);
}

int TorusTopology::diameter() const {
  return dims_[0] / 2 + dims_[1] / 2 + dims_[2] / 2;
}

double TorusTopology::mean_hops() const {
  // Mean per axis for a ring of n: (sum over d of min(d, n-d)) / n.
  auto axis_mean = [](int n) {
    double sum = 0.0;
    for (int d = 0; d < n; ++d) sum += std::min(d, n - d);
    return sum / n;
  };
  return axis_mean(dims_[0]) + axis_mean(dims_[1]) + axis_mean(dims_[2]);
}

double TorusTopology::bisection_bandwidth_Bps(const MachineConfig& c) const {
  // Cut the torus across its largest dimension: 2 * (product of the other
  // two dims) links cross the cut (wrap-around doubles it), each direction.
  int largest = std::max({dims_[0], dims_[1], dims_[2]});
  size_t cross_section = count_ / static_cast<size_t>(largest);
  double links = 2.0 * static_cast<double>(cross_section) *
                 (largest > 1 ? 2.0 : 0.0);
  return links * c.link_bandwidth_Bps;
}

}  // namespace antmd::machine
