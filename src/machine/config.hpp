// Machine description for the Anton-class special-purpose MD machine model.
//
// Numbers are modeled on the published first-generation Anton figures
// (Shaw et al., ISCA 2007 / SC 2009): a 3D torus of identical ASIC nodes,
// each with a high-throughput interaction subsystem (HTIS) of 32 pairwise
// point interaction modules (PPIMs) evaluating one tabulated pair
// interaction per cycle, and a "flexible" subsystem of programmable
// geometry cores (GCs) that runs everything the hardwired pipelines cannot
// express — bonded terms, constraints, integration, and the generality
// extensions this paper adds.  The timing model consumes workload counts
// from the functional simulation; no host wall-clock is involved.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace antmd::machine {

struct MachineConfig {
  std::string name = "anton-512";
  std::array<int, 3> torus = {8, 8, 8};  ///< nodes per dimension

  // --- high-throughput interaction subsystem (per node) ---
  double htis_clock_hz = 485e6;   ///< ASIC clock
  int ppims = 32;                 ///< pairwise pipelines per node
  double pairs_per_cycle = 1.0;   ///< per PPIM, fully pipelined
  /// The PPIM match unit examines candidate pairs at this multiple of the
  /// evaluation rate, rejecting out-of-range candidates before they use a
  /// pipeline slot.
  double match_rate_multiple = 8.0;

  // --- flexible subsystem (per node) ---
  double gc_clock_hz = 485e6;
  int geometry_cores = 4;
  double gc_flops_per_cycle = 4.0;  ///< SIMD lanes per core

  // --- interconnect ---
  double link_bandwidth_Bps = 6.3e9;  ///< per link per direction
  int links_per_node = 6;            ///< ±x, ±y, ±z
  double hop_latency_s = 50e-9;
  double message_overhead_s = 30e-9;  ///< per message injection cost

  // --- synchronization ---
  double barrier_latency_s = 0.4e-6;  ///< machine-wide fine-grained barrier

  /// Speedup of the FFT dataflow path over generic geometry-core code
  /// (Anton ran the k-space FFT through a dedicated microcoded pipeline).
  double fft_accel = 4.0;

  // --- power ---
  /// Wall power per node (ASIC + memory + links); Anton-1 nodes drew a few
  /// hundred watts including their share of infrastructure.
  double node_power_w = 300.0;

  /// Whole-machine wall power (kW).
  [[nodiscard]] double machine_power_kw() const {
    return static_cast<double>(node_count()) * node_power_w / 1000.0;
  }

  [[nodiscard]] size_t node_count() const {
    return static_cast<size_t>(torus[0]) * torus[1] * torus[2];
  }
  /// Aggregate pair-interaction throughput (pairs/s) of the whole machine.
  [[nodiscard]] double machine_pair_rate() const {
    return static_cast<double>(node_count()) * ppims * pairs_per_cycle *
           htis_clock_hz;
  }
  /// Per-node programmable-core throughput (flops/s equivalent).
  [[nodiscard]] double node_gc_rate() const {
    return geometry_cores * gc_flops_per_cycle * gc_clock_hz;
  }

  void validate() const {
    ANTMD_REQUIRE(torus[0] >= 1 && torus[1] >= 1 && torus[2] >= 1,
                  "torus dimensions must be positive");
    ANTMD_REQUIRE(ppims > 0 && geometry_cores > 0, "node needs hardware");
    ANTMD_REQUIRE(htis_clock_hz > 0 && gc_clock_hz > 0, "clocks must be set");
    ANTMD_REQUIRE(link_bandwidth_Bps > 0, "links need bandwidth");
  }
};

/// The full 512-node machine of the paper.
[[nodiscard]] MachineConfig anton_full();
/// Smaller partitions (Anton was operated as 128- and 64-node machines too).
[[nodiscard]] MachineConfig anton_with_torus(int nx, int ny, int nz);

/// Per-operation geometry-core costs (flop-equivalents), used to convert
/// workload counts into flexible-subsystem time.  These are model constants,
/// chosen so relative method costs land in the published ballpark; DESIGN.md
/// records them as modeling assumptions.
struct GcCosts {
  double bond = 45.0;
  double angle = 95.0;
  double dihedral = 190.0;
  double pair14 = 60.0;
  double constraint_iteration = 55.0;    ///< per constraint per sweep
  double vsite_construct = 18.0;
  double vsite_spread = 24.0;
  double integrate_atom = 36.0;          ///< kick+drift+bookkeeping
  double thermostat_atom = 22.0;
  double restraint = 40.0;
  double steered_spring = 55.0;
  double external_field_atom = 10.0;
  double kspace_spread_point = 3.0;      ///< per stencil point
  double kspace_interp_point = 4.0;
  double kspace_convolve_cell = 14.0;
  double tempering_decision = 4000.0;    ///< per exchange attempt (scalar)
};

}  // namespace antmd::machine
