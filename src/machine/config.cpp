#include "machine/config.hpp"

namespace antmd::machine {

MachineConfig anton_full() {
  MachineConfig cfg;
  cfg.name = "anton-512";
  cfg.torus = {8, 8, 8};
  cfg.validate();
  return cfg;
}

MachineConfig anton_with_torus(int nx, int ny, int nz) {
  MachineConfig cfg;
  cfg.torus = {nx, ny, nz};
  cfg.name = "anton-" + std::to_string(cfg.node_count());
  cfg.validate();
  return cfg;
}

}  // namespace antmd::machine
