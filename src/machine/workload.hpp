// Analytic workload estimation for systems too large to run functionally
// on the simulation host.
//
// The functional DistributedEngine produces exact workload counts for
// systems it can afford to evaluate; for the paper-scale benchmarks
// (up to ~185k atoms × 512 nodes) the counts are estimated from system
// statistics instead: pair counts from the density and cutoff, import
// volumes from home-box surface shells, k-space work from the grid.  The
// estimator is validated against the functional engine's counts in
// machine_test.
#pragma once

#include <cstddef>

#include "machine/timing.hpp"

namespace antmd::machine {

/// Density/connectivity statistics of a molecular system.
struct SystemStats {
  size_t atoms = 0;
  double number_density = 0.0;  ///< atoms/Å³
  double box_edge = 0.0;        ///< cubic box edge (Å)
  size_t bonds = 0;
  size_t angles = 0;
  size_t dihedrals = 0;
  size_t pairs14 = 0;
  size_t constraints = 0;
  size_t virtual_sites = 0;
  size_t charged_atoms = 0;
  size_t restraints = 0;        ///< restraint-like extension terms

  /// Water-box statistics for n_molecules of 3-site water.
  static SystemStats water(size_t n_molecules, bool rigid = true,
                           bool four_site = false);
  /// Monatomic LJ fluid.
  static SystemStats lj_fluid(size_t n_atoms, double density = 0.021);

  /// Mean nonbonded pairs per atom within the cutoff (minus a typical
  /// exclusion allowance).
  [[nodiscard]] double pairs_per_atom(double cutoff) const;
};

struct WorkloadParams {
  double cutoff = 10.0;
  /// Load imbalance: the busiest node carries `imbalance` × the mean.
  double imbalance = 1.10;
  /// Ratio of match-unit candidates to in-range pairs (search volume vs
  /// cutoff sphere; ~((rc+skin)/rc)³ for Verlet-style candidate sets).
  double candidate_ratio = 1.4;
  bool kspace_active = true;
  double grid_spacing = 1.0;       ///< GSE grid target spacing
  size_t spread_stencil = 125;     ///< 5³ compact GSE stencil
  size_t tempering_decisions = 0;
};

/// Builds the per-step workload of `stats` decomposed over `nodes` cubes
/// (nodes must be a cube for the home-box surface estimate; non-cubes use
/// the nearest cube root).
[[nodiscard]] StepWork estimate_step_work(const SystemStats& stats,
                                          size_t nodes,
                                          const WorkloadParams& params);

}  // namespace antmd::machine
