#include "machine/transport.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/serialize.hpp"

namespace antmd::machine {
namespace {

/// Deterministic wire image of message `m` from node `n`: what the CRC is
/// computed over.  Content is arbitrary but reproducible — only the
/// checksum behaviour matters.
std::array<uint64_t, 4> wire_image(size_t node, size_t msg) {
  uint64_t x = (static_cast<uint64_t>(node) << 32) ^ msg ^
               0x9E3779B97F4A7C15ull;
  std::array<uint64_t, 4> img;
  for (auto& w : img) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    w = x;
  }
  return img;
}

/// Exercises the same CRC-32 the checkpoint container uses: checksum the
/// message, flip one payload byte (the modeled in-flight corruption), and
/// confirm the receiver's recomputed CRC rejects it.
bool crc_rejects_corruption(size_t node, size_t msg) {
  auto img = wire_image(node, msg);
  const uint32_t sent = util::crc32(img.data(), sizeof(img));
  auto* bytes = reinterpret_cast<unsigned char*>(img.data());
  bytes[(node + msg) % sizeof(img)] ^= 0x40;
  const uint32_t received = util::crc32(img.data(), sizeof(img));
  return received != sent;
}

}  // namespace

ReliableTransport::ReliableTransport(const MachineConfig& machine,
                                     TransportConfig config)
    : config_(config),
      torus_(machine),
      link_bandwidth_Bps_(machine.link_bandwidth_Bps),
      hop_latency_s_(machine.hop_latency_s),
      message_overhead_s_(machine.message_overhead_s) {
  ANTMD_REQUIRE(config_.base_timeout_s > 0, "ack timeout must be positive");
  ANTMD_REQUIRE(config_.backoff_factor >= 1.0,
                "backoff factor must be >= 1");
  ANTMD_REQUIRE(config_.retry_budget >= 1, "retry budget must be >= 1");
}

double ReliableTransport::backoff_cost(int attempt) const {
  double timeout = config_.base_timeout_s;
  for (int i = 0; i < attempt; ++i) timeout *= config_.backoff_factor;
  return timeout;
}

double ReliableTransport::reroute_cost(size_t link) const {
  // The torus's redundant dimension: the ring along the link's axis can be
  // traversed the other way, at (n - 2) extra hops relative to the one-hop
  // neighbour path, plus a fresh injection.
  const int n = torus_.dims()[static_cast<size_t>(torus_.link_axis(link))];
  const double extra_hops = static_cast<double>(std::max(0, n - 2));
  return extra_hops * hop_latency_s_ + message_overhead_s_;
}

size_t ReliableTransport::down_link_count() const {
  size_t n = 0;
  for (char d : down_) {
    if (d) ++n;
  }
  return n;
}

void ReliableTransport::set_link_down(size_t link, bool down) {
  ANTMD_REQUIRE(link < torus_.link_count(), "link id out of range");
  if (down_.empty()) down_.assign(torus_.link_count(), 0);
  down_[link] = down ? 1 : 0;
}

StepDelivery ReliableTransport::deliver(const StepWork& work) {
  StepDelivery out;

  // A hung node is a per-step event: it stalls the bulk-synchronous step
  // until the watchdog (supervisor) notices, so the whole stall lands in
  // this step's reliability charge.
  uint64_t payload = 0;
  if (fault::should_fire(fault::FaultKind::kNodeHang, &payload)) {
    out.hung_node = payload % torus_.node_count();
    hung_node_ = out.hung_node;
    out.extra_s += config_.hang_duration_s;
    ++stats_.hangs;
  }

  const double serialize_s =
      config_.message_bytes / link_bandwidth_Bps_;
  const double nack_s = 2.0 * hop_latency_s_ + serialize_s;

  for (size_t n = 0; n < work.nodes.size(); ++n) {
    const size_t msgs = work.nodes[n].messages;
    for (size_t m = 0; m < msgs; ++m) {
      ++out.messages;
      ++out.crc_checks;
      // Fixed round-robin assignment of messages to the node's six
      // outbound links keeps the fault → link mapping deterministic.
      const int axis = static_cast<int>(m % 3);
      const int sign = (m % 6) < 3 ? 1 : -1;
      size_t link = torus_.link_id(n, axis, sign);

      if (link_down(link)) {
        // Already down-marked: take the redundant direction immediately.
        out.extra_s += reroute_cost(link);
        ++out.rerouted;
        link = torus_.link_id(n, axis, -sign);
      }

      // In-flight corruption: the per-message CRC-32 (same code path as the
      // checkpoint container) rejects the payload and the receiver nacks.
      if (fault::should_fire(fault::FaultKind::kPacketCorrupt)) {
        ANTMD_REQUIRE(crc_rejects_corruption(n, m),
                      "CRC-32 failed to reject a corrupt message");
        ++out.corrupt_detected;
        int attempt = 0;
        out.extra_s += nack_s;
        ++out.retransmits;
        while (attempt < config_.retry_budget &&
               fault::should_fire(fault::FaultKind::kPacketCorrupt)) {
          ++attempt;
          out.extra_s += nack_s;
          ++out.retransmits;
          ++out.corrupt_detected;
        }
        if (attempt >= config_.retry_budget) {
          // Persistent corruption is a broken wire: down-mark and reroute.
          set_link_down(link);
          ++out.links_downed;
          out.extra_s += reroute_cost(link);
          ++out.rerouted;
        }
      }

      // Silent drop: no ack arrives, the sender times out and retransmits
      // with exponential backoff until the retry budget is spent, then
      // declares the link dead and reroutes around the ring.
      if (fault::should_fire(fault::FaultKind::kLinkDrop)) {
        ++out.drops;
        int attempt = 0;
        bool delivered = false;
        while (attempt < config_.retry_budget) {
          out.extra_s += backoff_cost(attempt) + serialize_s;
          ++out.retransmits;
          ++attempt;
          if (!fault::should_fire(fault::FaultKind::kLinkDrop)) {
            delivered = true;
            break;
          }
          ++out.drops;
        }
        if (!delivered) {
          set_link_down(link);
          ++out.links_downed;
          out.extra_s += reroute_cost(link);
          ++out.rerouted;
        }
      }
    }
  }

  stats_.messages += out.messages;
  stats_.corrupt_detected += out.corrupt_detected;
  stats_.drops += out.drops;
  stats_.retransmits += out.retransmits;
  stats_.rerouted += out.rerouted;
  stats_.reliability_s += out.extra_s;
  return out;
}

}  // namespace antmd::machine
