// Timing model: converts per-step workload counts (from the functional
// simulation) into modeled step time on the configured machine.
//
// The step is modeled as the phase sequence Anton executes:
//   1. position multicast (fixed-point positions to importing nodes)
//   2. interaction phase — HTIS pair pipelines and geometry-core force work
//      (bonded terms, restraints, generality extensions) run CONCURRENTLY
//   3. force reduction (returns to home nodes)
//   4. update phase on geometry cores (integration, constraints, vsites,
//      thermostat) — serial after forces
//   5. k-space phase when due: spread → distributed FFT (compute + two
//      all-to-all transposes) → convolve → inverse FFT → interpolate
//   6. global barrier
// Step time is the max over nodes within each phase (bulk-synchronous).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "machine/config.hpp"
#include "machine/torus.hpp"

namespace antmd::machine {

/// Per-node workload for one MD step (functional counts, no time units).
struct NodeWork {
  size_t pairs = 0;              ///< tabulated pair evaluations (HTIS)
  size_t pairs_examined = 0;     ///< match-unit candidates (0 = same as pairs)
  /// Blocked cluster-pair kernel counts.  When cluster_tiles > 0 the HTIS
  /// phase is charged per streamed tile lane (cluster_lanes = tiles × 16,
  /// masked-off lanes included — the pipeline cannot skip them) instead of
  /// per matched pair, and the match unit screens tiles, not pairs.
  size_t cluster_tiles = 0;
  size_t cluster_lanes = 0;
  double gc_force_flops = 0.0;   ///< bonded/restraints/etc — overlaps HTIS
  double gc_update_flops = 0.0;  ///< integration/constraints — post-reduce
  double import_bytes = 0.0;     ///< position data this node receives
  double export_bytes = 0.0;     ///< force data this node sends back
  size_t messages = 0;           ///< point-to-point messages this node sends
};

/// Global (machine-wide) k-space workload for one step; inactive when the
/// step reuses cached reciprocal forces (RESPA).
struct KspaceWork {
  bool active = false;
  size_t grid_points = 0;
  size_t charges = 0;
  size_t stencil_points = 0;  ///< spreading stencil size per charge
  double fft_flops = 0.0;     ///< forward+inverse total
};

struct StepWork {
  std::vector<NodeWork> nodes;
  KspaceWork kspace;
  size_t tempering_decisions = 0;  ///< exchange attempts this step
};

/// Modeled wall-clock phases of one step (seconds).
struct StepBreakdown {
  double multicast = 0.0;
  double pair_phase = 0.0;      ///< HTIS time (max over nodes)
  /// Share of the worst node's pair_phase spent streaming masked-off tile
  /// lanes (cluster kernel only; the padding cost of blocking).  Included
  /// in pair_phase, not added to total.
  double pair_masked = 0.0;
  double gc_force_phase = 0.0;  ///< concurrent GC force work (max over nodes)
  double interaction = 0.0;     ///< max(pair_phase, gc_force_phase)
  double reduce = 0.0;
  double update = 0.0;
  double kspace_spread = 0.0;
  double kspace_fft_compute = 0.0;
  double kspace_fft_comm = 0.0;
  double kspace_convolve = 0.0;
  double kspace_interp = 0.0;
  double tempering = 0.0;
  double sync = 0.0;
  /// Reliability-protocol overhead charged by machine::ReliableTransport:
  /// retransmit timeouts/backoff, CRC nack round trips, reroutes around
  /// down-marked links, and node-hang stalls.  Zero on a healthy machine.
  /// Filled in by the driver (MachineSimulation) after step_time().
  double reliability = 0.0;
  /// Wall-clock seconds the SDC audit layer spent on this step (digests,
  /// scrubbing, shadow re-execution).  Informational like pair_masked: not
  /// added to total, so auditing never inflates the modeled physics time
  /// or trips the supervisor's per-step watchdog.  Filled in by the
  /// resilience::Auditor after the step completes.
  double audit = 0.0;
  double total = 0.0;

  [[nodiscard]] double kspace_total() const {
    return kspace_spread + kspace_fft_compute + kspace_fft_comm +
           kspace_convolve + kspace_interp;
  }
  /// Fraction of the step the HTIS pipelines are busy.
  [[nodiscard]] double htis_utilization() const {
    return total > 0 ? pair_phase / total : 0.0;
  }
  /// Fraction of the step the geometry cores are busy.
  [[nodiscard]] double gc_utilization() const {
    return total > 0
               ? (gc_force_phase + update + kspace_spread + kspace_interp +
                  kspace_convolve + kspace_fft_compute) /
                     total
               : 0.0;
  }
  /// Total network time of the step.  Fixed left-to-right association —
  /// obs::Profile accumulates its per-class totals in the same order, so
  /// the profiler's class sum matches this bit-for-bit (profile_test).
  [[nodiscard]] double network_total() const {
    return multicast + reduce + kspace_fft_comm + sync + reliability;
  }
  /// Fraction of the step spent on the network (non-overlapped).
  [[nodiscard]] double network_fraction() const {
    return total > 0 ? network_total() / total : 0.0;
  }
};

/// Component split of one network phase's modeled time: serialization
/// (bytes over injection/bisection bandwidth), queueing (per-message
/// injection overhead) and contention (hop-latency terms — the part set by
/// topology and traffic crossing, not by this node's own wire rate).
struct NetworkCost {
  double serialization = 0.0;
  double queueing = 0.0;
  double contention = 0.0;
};

/// Per-phase network attribution for one step, filled by
/// TimingModel::step_time on request (profiling only).  Per-phase costs
/// describe the worst node — the one that set the bulk-synchronous phase
/// time; message/byte totals sum over all nodes.  The components are the
/// model's own terms, so serialization + queueing + contention re-sums to
/// the matching StepBreakdown field to within floating-point rounding.
struct NetworkAttribution {
  NetworkCost multicast;
  NetworkCost reduce;
  NetworkCost kspace_fft;
  uint64_t multicast_messages = 0;  ///< point-to-point messages, all nodes
  uint64_t kspace_messages = 0;     ///< FFT transpose messages
  double multicast_bytes = 0.0;     ///< total import volume
  double reduce_bytes = 0.0;        ///< total export volume
  double kspace_bytes = 0.0;        ///< FFT transpose volume
};

class TimingModel {
 public:
  TimingModel(MachineConfig config, GcCosts costs = GcCosts{});

  /// Models one step.  When `attribution` is non-null (attribution
  /// profiling) the per-phase network component split is filled in too;
  /// the returned breakdown is bit-identical either way.
  [[nodiscard]] StepBreakdown step_time(
      const StepWork& work, NetworkAttribution* attribution = nullptr) const;

  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] const GcCosts& costs() const { return costs_; }

  /// Marks a node as degraded: its compute phases (pair pipelines, geometry
  /// cores) run `factor` times slower.  factor = 1 restores full speed.
  /// Models a partially failed / thermally throttled node; the step time is
  /// a max over nodes, so one slow node stretches the whole machine.
  void set_node_slowdown(size_t node, double factor);
  [[nodiscard]] double node_slowdown(size_t node) const {
    return node < slowdowns_.size() ? slowdowns_[node] : 1.0;
  }

 private:
  MachineConfig config_;
  GcCosts costs_;
  TorusTopology torus_;
  std::vector<double> slowdowns_;  ///< empty = all nodes at full speed
};

/// Simulated nanoseconds per wall-clock day for a given outer timestep and
/// modeled average step time.
[[nodiscard]] double ns_per_day(double dt_fs, double step_time_s);

}  // namespace antmd::machine
