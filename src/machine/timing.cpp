#include "machine/timing.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace antmd::machine {

TimingModel::TimingModel(MachineConfig config, GcCosts costs)
    : config_(std::move(config)), costs_(costs), torus_(config_) {
  config_.validate();
}

StepBreakdown TimingModel::step_time(const StepWork& work,
                                     NetworkAttribution* attribution) const {
  ANTMD_REQUIRE(!work.nodes.empty(), "step work must cover at least 1 node");
  StepBreakdown out;

  const double pair_rate =
      config_.ppims * config_.pairs_per_cycle * config_.htis_clock_hz;
  const double gc_rate = config_.node_gc_rate();
  // Injection bandwidth: a node drives half its links outbound on average.
  const double inject_bw =
      config_.link_bandwidth_Bps * std::max(1, config_.links_per_node / 2);
  const double mean_hop_lat = torus_.mean_hops() * config_.hop_latency_s;

  NetworkAttribution attr;
  double worst_multicast = 0, worst_pair = 0, worst_gcf = 0, worst_reduce = 0,
         worst_update = 0, worst_pair_masked = 0;
  for (size_t i = 0; i < work.nodes.size(); ++i) {
    const NodeWork& n = work.nodes[i];
    const double slow = node_slowdown(i);
    // The phase time is the sum of its attribution components, associated
    // left to right — exactly the expression the model always charged.
    const double mc_ser = n.import_bytes / inject_bw;
    const double mc_queue =
        static_cast<double>(n.messages) * config_.message_overhead_s;
    const double mc_lat = n.import_bytes > 0 ? mean_hop_lat : 0.0;
    const double t_mc = mc_ser + mc_queue + mc_lat;
    double t_pair;
    double t_masked = 0.0;
    if (n.cluster_tiles > 0) {
      // Blocked kernel: the pipelines stream every lane of every tile
      // (masked lanes burn a slot too), while the match unit only has to
      // screen one candidate per tile — the blocking trades lane padding
      // for a 16x lighter match stream.
      const double lanes = static_cast<double>(n.cluster_lanes);
      const double tiles = static_cast<double>(n.cluster_tiles);
      t_pair = slow *
               std::max(lanes / pair_rate,
                        tiles / (pair_rate * config_.match_rate_multiple));
      const double masked_lanes = lanes - static_cast<double>(n.pairs);
      t_masked = lanes > 0 ? t_pair * masked_lanes / lanes : 0.0;
    } else {
      double examined = static_cast<double>(
          n.pairs_examined ? n.pairs_examined : n.pairs);
      t_pair = slow *
               std::max(static_cast<double>(n.pairs) / pair_rate,
                        examined / (pair_rate * config_.match_rate_multiple));
    }
    double t_gcf = slow * n.gc_force_flops / gc_rate;
    const double red_ser = n.export_bytes / inject_bw;
    const double red_lat = n.export_bytes > 0 ? mean_hop_lat : 0.0;
    const double t_red = red_ser + red_lat;
    double t_upd = slow * n.gc_update_flops / gc_rate;
    if (t_mc > worst_multicast) {
      worst_multicast = t_mc;
      attr.multicast = {mc_ser, mc_queue, mc_lat};
    }
    if (t_pair > worst_pair) {
      worst_pair = t_pair;
      worst_pair_masked = t_masked;
    }
    worst_gcf = std::max(worst_gcf, t_gcf);
    if (t_red > worst_reduce) {
      worst_reduce = t_red;
      attr.reduce = {red_ser, 0.0, red_lat};
    }
    worst_update = std::max(worst_update, t_upd);
    attr.multicast_messages += n.messages;
    attr.multicast_bytes += n.import_bytes;
    attr.reduce_bytes += n.export_bytes;
  }
  out.multicast = worst_multicast;
  out.pair_phase = worst_pair;
  out.pair_masked = worst_pair_masked;
  out.gc_force_phase = worst_gcf;
  out.interaction = std::max(worst_pair, worst_gcf);
  out.reduce = worst_reduce;
  out.update = worst_update;

  if (work.kspace.active) {
    const size_t nodes = work.nodes.size();
    const double n_nodes = static_cast<double>(nodes);
    double spread_flops = static_cast<double>(work.kspace.charges) *
                          work.kspace.stencil_points *
                          costs_.kspace_spread_point;
    double interp_flops = static_cast<double>(work.kspace.charges) *
                          work.kspace.stencil_points *
                          costs_.kspace_interp_point;
    double convolve_flops = static_cast<double>(work.kspace.grid_points) *
                            costs_.kspace_convolve_cell;
    out.kspace_spread = spread_flops / n_nodes / gc_rate;
    out.kspace_interp = interp_flops / n_nodes / gc_rate;
    out.kspace_convolve = convolve_flops / n_nodes / gc_rate;
    out.kspace_fft_compute =
        work.kspace.fft_flops / n_nodes / (gc_rate * config_.fft_accel);

    if (nodes > 1) {
      // Two all-to-all transposes per direction (4 total for fwd+inv); the
      // grid crosses the bisection each time, 8 B per (fixed-point complex)
      // grid point.
      double transpose_bytes =
          4.0 * static_cast<double>(work.kspace.grid_points) * 8.0;
      double bisection = torus_.bisection_bandwidth_Bps(config_);
      // Each node talks to the nodes sharing its pencil plane.
      double msgs = 4.0 * std::cbrt(n_nodes) * std::cbrt(n_nodes);
      const double fft_ser = transpose_bytes / bisection;
      const double fft_queue = msgs * config_.message_overhead_s;
      const double fft_lat = 4.0 * mean_hop_lat;
      out.kspace_fft_comm = fft_ser + fft_queue + fft_lat;
      attr.kspace_fft = {fft_ser, fft_queue, fft_lat};
      attr.kspace_messages = static_cast<uint64_t>(msgs);
      attr.kspace_bytes = transpose_bytes;
    }
  }

  if (work.tempering_decisions > 0) {
    out.tempering = static_cast<double>(work.tempering_decisions) *
                    costs_.tempering_decision / gc_rate;
  }

  out.sync = config_.barrier_latency_s;

  out.total = out.multicast + out.interaction + out.reduce + out.update +
              out.kspace_total() + out.tempering + out.sync;
  if (attribution) *attribution = attr;
  return out;
}

void TimingModel::set_node_slowdown(size_t node, double factor) {
  ANTMD_REQUIRE(factor >= 1.0, "slowdown factor must be >= 1");
  if (node >= slowdowns_.size()) slowdowns_.resize(node + 1, 1.0);
  slowdowns_[node] = factor;
}

double ns_per_day(double dt_fs, double step_time_s) {
  ANTMD_REQUIRE(dt_fs > 0 && step_time_s > 0, "need positive step time");
  double steps_per_day = 86400.0 / step_time_s;
  return steps_per_day * dt_fs * 1e-6;  // fs -> ns
}

}  // namespace antmd::machine
