// Link-level contention model for the torus position multicast.
//
// The base TimingModel charges communication at each node's injection
// bandwidth, which is exact for uniform neighbour exchange but blind to
// hot links.  This model routes every neighbour-exchange message
// dimension-ordered (x, then y, then z) over directed links, accumulates
// per-link byte loads, and bounds each message's completion by its
// bottleneck link — so load imbalance shows up as link contention, which
// is how it actually hurts on the real machine.
#pragma once

#include <cstddef>
#include <vector>

#include "machine/timing.hpp"
#include "machine/torus.hpp"

namespace antmd::machine {

struct ContentionResult {
  double phase_time_s = 0.0;     ///< last message arrival
  double max_link_bytes = 0.0;   ///< hottest link load
  double mean_link_bytes = 0.0;  ///< over links that carried traffic
  size_t links_used = 0;
};

class LinkContentionModel {
 public:
  explicit LinkContentionModel(const MachineConfig& config);

  /// Models the position-multicast phase: each node sends its import
  /// volume to its 26 spatial neighbours (faces carry most of the halo),
  /// dimension-ordered routing, per-link serialization.  When
  /// `link_bytes_out` is non-null it receives the per-directed-link byte
  /// loads (index = TorusTopology::link_id, size node_count * 6) — the
  /// attribution profiler's per-link feed.
  [[nodiscard]] ContentionResult multicast_time(
      const std::vector<NodeWork>& nodes,
      std::vector<double>* link_bytes_out = nullptr) const;

  /// Down-marked directed links (ReliableTransport's view, shared via
  /// TorusTopology::link_id).  Axis legs whose first hop would cross a down
  /// link are rerouted the long way around the ring — the torus's redundant
  /// direction — so a degraded network shows up as longer routes and hotter
  /// surviving links in the contention gauges.
  void set_down_links(const std::vector<char>& down) { down_ = down; }
  [[nodiscard]] bool link_down(size_t link) const {
    return link < down_.size() && down_[link] != 0;
  }

 private:
  MachineConfig config_;
  TorusTopology torus_;
  std::vector<char> down_;  ///< per directed link (empty = all up)
};

}  // namespace antmd::machine
