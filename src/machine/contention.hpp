// Link-level contention model for the torus position multicast.
//
// The base TimingModel charges communication at each node's injection
// bandwidth, which is exact for uniform neighbour exchange but blind to
// hot links.  This model routes every neighbour-exchange message
// dimension-ordered (x, then y, then z) over directed links, accumulates
// per-link byte loads, and bounds each message's completion by its
// bottleneck link — so load imbalance shows up as link contention, which
// is how it actually hurts on the real machine.
#pragma once

#include <cstddef>
#include <vector>

#include "machine/timing.hpp"
#include "machine/torus.hpp"

namespace antmd::machine {

struct ContentionResult {
  double phase_time_s = 0.0;     ///< last message arrival
  double max_link_bytes = 0.0;   ///< hottest link load
  double mean_link_bytes = 0.0;  ///< over links that carried traffic
  size_t links_used = 0;
};

class LinkContentionModel {
 public:
  explicit LinkContentionModel(const MachineConfig& config);

  /// Models the position-multicast phase: each node sends its import
  /// volume to its 26 spatial neighbours (faces carry most of the halo),
  /// dimension-ordered routing, per-link serialization.
  [[nodiscard]] ContentionResult multicast_time(
      const std::vector<NodeWork>& nodes) const;

 private:
  /// Directed link id for the hop from `from` one step along `axis` in
  /// direction `sign`.
  [[nodiscard]] size_t link_id(size_t from, int axis, int sign) const;

  MachineConfig config_;
  TorusTopology torus_;
};

}  // namespace antmd::machine
