// Reliable modeled transport for the torus interconnect.
//
// The real machine's network treats failure as normal: every packet carries
// a link-level CRC, every message is acked, and lost or corrupt packets are
// retransmitted in hardware (Anton 3 network, PAPERS.md).  This layer gives
// the *modeled* machine the same contract.  It consumes the per-node message
// counts the DistributedEngine already produces, pushes every message
// through a failure model driven by util::fault
// (kLinkDrop / kPacketCorrupt / kNodeHang), and charges the resulting
// protocol overhead — retransmit timeouts with deterministic exponential
// backoff, CRC nack round trips, reroutes around down-marked links, and
// node-hang stalls — as modeled time only.
//
// Invariant: the transport never touches positions, forces or energies.  A
// faulted run is bit-identical in physics to a healthy one; the faults show
// up exclusively in StepBreakdown::reliability, the machine.transport.*
// metrics, and the link-down state fed to the contention model.
//
// Messages are delivered in a fixed order (node index, then message index)
// and every random decision comes from the deterministic fault registry, so
// a given fault schedule reproduces the same delivery trace on every run.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/config.hpp"
#include "machine/timing.hpp"
#include "machine/torus.hpp"

namespace antmd::machine {

struct TransportConfig {
  /// Ack timeout before the first retransmit (seconds, modeled).
  double base_timeout_s = 1e-6;
  /// Deterministic exponential backoff multiplier per retransmit.
  double backoff_factor = 2.0;
  /// Retransmits attempted per message before the link is down-marked.
  int retry_budget = 4;
  /// Modeled wire bytes per point-to-point message (header + payload).
  double message_bytes = 256.0;
  /// Modeled stall when a node hangs (seconds).  Long enough to blow any
  /// sane phase-watchdog deadline, short enough to keep soak runs cheap.
  double hang_duration_s = 5e-3;
};

/// What happened to the messages of one step.
struct StepDelivery {
  uint64_t messages = 0;          ///< point-to-point messages delivered
  uint64_t crc_checks = 0;        ///< per-message CRC-32 verifications
  uint64_t corrupt_detected = 0;  ///< CRC mismatches caught (kPacketCorrupt)
  uint64_t drops = 0;             ///< ack timeouts (kLinkDrop)
  uint64_t retransmits = 0;       ///< total retransmissions this step
  uint64_t rerouted = 0;          ///< messages sent the long way around
  uint64_t links_downed = 0;      ///< links down-marked this step
  /// Node that stopped acking this step (kNodeHang), or kNoNode.
  size_t hung_node = kNoNode;
  /// Protocol overhead charged to the step (seconds, modeled).
  double extra_s = 0.0;

  static constexpr size_t kNoNode = static_cast<size_t>(-1);
};

/// Cumulative transport counters since construction (or restore).
struct TransportStats {
  uint64_t messages = 0;
  uint64_t corrupt_detected = 0;
  uint64_t drops = 0;
  uint64_t retransmits = 0;
  uint64_t rerouted = 0;
  uint64_t hangs = 0;
  double reliability_s = 0.0;  ///< total modeled protocol overhead
};

class ReliableTransport {
 public:
  explicit ReliableTransport(const MachineConfig& machine,
                             TransportConfig config = {});

  /// Pushes one step's messages through the failure model and returns what
  /// it cost.  Polls the kLinkDrop / kPacketCorrupt / kNodeHang fault
  /// points; with nothing armed this is a cheap pass over the node list.
  StepDelivery deliver(const StepWork& work);

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  [[nodiscard]] const TorusTopology& torus() const { return torus_; }

  // --- link state -------------------------------------------------------------
  [[nodiscard]] bool link_down(size_t link) const {
    return link < down_.size() && down_[link] != 0;
  }
  [[nodiscard]] size_t down_link_count() const;
  /// Per-link down flags (empty = all up); fed to LinkContentionModel so a
  /// degraded network also shows up in the contention gauges.
  [[nodiscard]] const std::vector<char>& down_links() const { return down_; }
  /// Manually down/up a link (tests, operator tooling).
  void set_link_down(size_t link, bool down = true);

  // --- node-hang handshake ----------------------------------------------------
  /// Last node observed hanging; cleared by acknowledge_hang() once the
  /// supervisor has remapped it.
  [[nodiscard]] size_t hung_node() const { return hung_node_; }
  void acknowledge_hang() { hung_node_ = StepDelivery::kNoNode; }

  [[nodiscard]] const TransportConfig& config() const { return config_; }

  // --- checkpoint -------------------------------------------------------------
  // Serialized by MachineSimulation so a resumed run reports the same
  // cumulative reliability picture as an uninterrupted one.
  void save_state(std::vector<char>& down, TransportStats& stats) const {
    down = down_;
    stats = stats_;
  }
  void restore_state(std::vector<char> down, const TransportStats& stats) {
    down_ = std::move(down);
    stats_ = stats;
    hung_node_ = StepDelivery::kNoNode;
  }

 private:
  /// Cost of one retransmit chain; returns attempts actually used and
  /// whether the message ultimately got through without down-marking.
  double backoff_cost(int attempt) const;
  /// Extra one-way cost of routing around a down link: the wrap-around
  /// redundancy of the torus ring along the link's axis.
  double reroute_cost(size_t link) const;

  TransportConfig config_;
  TorusTopology torus_;
  // Machine timing constants the protocol costs are built from.
  double link_bandwidth_Bps_;
  double hop_latency_s_;
  double message_overhead_s_;
  std::vector<char> down_;  ///< per directed link (empty = all up)
  TransportStats stats_;
  size_t hung_node_ = StepDelivery::kNoNode;
};

}  // namespace antmd::machine
