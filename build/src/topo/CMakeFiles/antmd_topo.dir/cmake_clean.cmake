file(REMOVE_RECURSE
  "CMakeFiles/antmd_topo.dir/builders.cpp.o"
  "CMakeFiles/antmd_topo.dir/builders.cpp.o.d"
  "CMakeFiles/antmd_topo.dir/topology.cpp.o"
  "CMakeFiles/antmd_topo.dir/topology.cpp.o.d"
  "libantmd_topo.a"
  "libantmd_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
