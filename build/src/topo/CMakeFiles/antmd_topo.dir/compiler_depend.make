# Empty compiler generated dependencies file for antmd_topo.
# This may be replaced when dependencies are built.
