file(REMOVE_RECURSE
  "libantmd_topo.a"
)
