file(REMOVE_RECURSE
  "CMakeFiles/antmd_sampling.dir/common.cpp.o"
  "CMakeFiles/antmd_sampling.dir/common.cpp.o.d"
  "CMakeFiles/antmd_sampling.dir/fep.cpp.o"
  "CMakeFiles/antmd_sampling.dir/fep.cpp.o.d"
  "CMakeFiles/antmd_sampling.dir/metadynamics.cpp.o"
  "CMakeFiles/antmd_sampling.dir/metadynamics.cpp.o.d"
  "CMakeFiles/antmd_sampling.dir/replica_exchange.cpp.o"
  "CMakeFiles/antmd_sampling.dir/replica_exchange.cpp.o.d"
  "CMakeFiles/antmd_sampling.dir/smd.cpp.o"
  "CMakeFiles/antmd_sampling.dir/smd.cpp.o.d"
  "CMakeFiles/antmd_sampling.dir/tamd.cpp.o"
  "CMakeFiles/antmd_sampling.dir/tamd.cpp.o.d"
  "CMakeFiles/antmd_sampling.dir/tempering.cpp.o"
  "CMakeFiles/antmd_sampling.dir/tempering.cpp.o.d"
  "CMakeFiles/antmd_sampling.dir/torsion_meta.cpp.o"
  "CMakeFiles/antmd_sampling.dir/torsion_meta.cpp.o.d"
  "CMakeFiles/antmd_sampling.dir/umbrella.cpp.o"
  "CMakeFiles/antmd_sampling.dir/umbrella.cpp.o.d"
  "libantmd_sampling.a"
  "libantmd_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
