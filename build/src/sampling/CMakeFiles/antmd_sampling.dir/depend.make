# Empty dependencies file for antmd_sampling.
# This may be replaced when dependencies are built.
