file(REMOVE_RECURSE
  "libantmd_sampling.a"
)
