
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/common.cpp" "src/sampling/CMakeFiles/antmd_sampling.dir/common.cpp.o" "gcc" "src/sampling/CMakeFiles/antmd_sampling.dir/common.cpp.o.d"
  "/root/repo/src/sampling/fep.cpp" "src/sampling/CMakeFiles/antmd_sampling.dir/fep.cpp.o" "gcc" "src/sampling/CMakeFiles/antmd_sampling.dir/fep.cpp.o.d"
  "/root/repo/src/sampling/metadynamics.cpp" "src/sampling/CMakeFiles/antmd_sampling.dir/metadynamics.cpp.o" "gcc" "src/sampling/CMakeFiles/antmd_sampling.dir/metadynamics.cpp.o.d"
  "/root/repo/src/sampling/replica_exchange.cpp" "src/sampling/CMakeFiles/antmd_sampling.dir/replica_exchange.cpp.o" "gcc" "src/sampling/CMakeFiles/antmd_sampling.dir/replica_exchange.cpp.o.d"
  "/root/repo/src/sampling/smd.cpp" "src/sampling/CMakeFiles/antmd_sampling.dir/smd.cpp.o" "gcc" "src/sampling/CMakeFiles/antmd_sampling.dir/smd.cpp.o.d"
  "/root/repo/src/sampling/tamd.cpp" "src/sampling/CMakeFiles/antmd_sampling.dir/tamd.cpp.o" "gcc" "src/sampling/CMakeFiles/antmd_sampling.dir/tamd.cpp.o.d"
  "/root/repo/src/sampling/tempering.cpp" "src/sampling/CMakeFiles/antmd_sampling.dir/tempering.cpp.o" "gcc" "src/sampling/CMakeFiles/antmd_sampling.dir/tempering.cpp.o.d"
  "/root/repo/src/sampling/torsion_meta.cpp" "src/sampling/CMakeFiles/antmd_sampling.dir/torsion_meta.cpp.o" "gcc" "src/sampling/CMakeFiles/antmd_sampling.dir/torsion_meta.cpp.o.d"
  "/root/repo/src/sampling/umbrella.cpp" "src/sampling/CMakeFiles/antmd_sampling.dir/umbrella.cpp.o" "gcc" "src/sampling/CMakeFiles/antmd_sampling.dir/umbrella.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/antmd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/antmd_math.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/antmd_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/ff/CMakeFiles/antmd_ff.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/antmd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/antmd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ewald/CMakeFiles/antmd_ewald.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/antmd_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
