file(REMOVE_RECURSE
  "libantmd_util.a"
)
