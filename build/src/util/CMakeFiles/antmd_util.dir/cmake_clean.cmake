file(REMOVE_RECURSE
  "CMakeFiles/antmd_util.dir/cli.cpp.o"
  "CMakeFiles/antmd_util.dir/cli.cpp.o.d"
  "CMakeFiles/antmd_util.dir/error.cpp.o"
  "CMakeFiles/antmd_util.dir/error.cpp.o.d"
  "CMakeFiles/antmd_util.dir/execution.cpp.o"
  "CMakeFiles/antmd_util.dir/execution.cpp.o.d"
  "CMakeFiles/antmd_util.dir/log.cpp.o"
  "CMakeFiles/antmd_util.dir/log.cpp.o.d"
  "CMakeFiles/antmd_util.dir/table.cpp.o"
  "CMakeFiles/antmd_util.dir/table.cpp.o.d"
  "CMakeFiles/antmd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/antmd_util.dir/thread_pool.cpp.o.d"
  "libantmd_util.a"
  "libantmd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
