# Empty compiler generated dependencies file for antmd_util.
# This may be replaced when dependencies are built.
