file(REMOVE_RECURSE
  "CMakeFiles/antmd_analysis.dir/free_energy.cpp.o"
  "CMakeFiles/antmd_analysis.dir/free_energy.cpp.o.d"
  "CMakeFiles/antmd_analysis.dir/stats.cpp.o"
  "CMakeFiles/antmd_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/antmd_analysis.dir/structure.cpp.o"
  "CMakeFiles/antmd_analysis.dir/structure.cpp.o.d"
  "CMakeFiles/antmd_analysis.dir/transport.cpp.o"
  "CMakeFiles/antmd_analysis.dir/transport.cpp.o.d"
  "libantmd_analysis.a"
  "libantmd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
