file(REMOVE_RECURSE
  "libantmd_analysis.a"
)
