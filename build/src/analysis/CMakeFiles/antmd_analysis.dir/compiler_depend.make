# Empty compiler generated dependencies file for antmd_analysis.
# This may be replaced when dependencies are built.
