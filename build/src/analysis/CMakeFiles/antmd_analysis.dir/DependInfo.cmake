
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/free_energy.cpp" "src/analysis/CMakeFiles/antmd_analysis.dir/free_energy.cpp.o" "gcc" "src/analysis/CMakeFiles/antmd_analysis.dir/free_energy.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/antmd_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/antmd_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/analysis/structure.cpp" "src/analysis/CMakeFiles/antmd_analysis.dir/structure.cpp.o" "gcc" "src/analysis/CMakeFiles/antmd_analysis.dir/structure.cpp.o.d"
  "/root/repo/src/analysis/transport.cpp" "src/analysis/CMakeFiles/antmd_analysis.dir/transport.cpp.o" "gcc" "src/analysis/CMakeFiles/antmd_analysis.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/antmd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/antmd_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
