# Empty compiler generated dependencies file for antmd_ewald.
# This may be replaced when dependencies are built.
