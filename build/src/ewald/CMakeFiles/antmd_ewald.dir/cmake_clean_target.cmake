file(REMOVE_RECURSE
  "libantmd_ewald.a"
)
