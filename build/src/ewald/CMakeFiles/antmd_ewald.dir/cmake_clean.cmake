file(REMOVE_RECURSE
  "CMakeFiles/antmd_ewald.dir/gse.cpp.o"
  "CMakeFiles/antmd_ewald.dir/gse.cpp.o.d"
  "libantmd_ewald.a"
  "libantmd_ewald.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_ewald.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
