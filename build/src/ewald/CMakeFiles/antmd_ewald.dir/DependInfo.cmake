
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ewald/gse.cpp" "src/ewald/CMakeFiles/antmd_ewald.dir/gse.cpp.o" "gcc" "src/ewald/CMakeFiles/antmd_ewald.dir/gse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/antmd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/antmd_math.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/antmd_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/antmd_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
