# Empty compiler generated dependencies file for antmd_machine.
# This may be replaced when dependencies are built.
