file(REMOVE_RECURSE
  "libantmd_machine.a"
)
