file(REMOVE_RECURSE
  "CMakeFiles/antmd_machine.dir/config.cpp.o"
  "CMakeFiles/antmd_machine.dir/config.cpp.o.d"
  "CMakeFiles/antmd_machine.dir/contention.cpp.o"
  "CMakeFiles/antmd_machine.dir/contention.cpp.o.d"
  "CMakeFiles/antmd_machine.dir/timing.cpp.o"
  "CMakeFiles/antmd_machine.dir/timing.cpp.o.d"
  "CMakeFiles/antmd_machine.dir/torus.cpp.o"
  "CMakeFiles/antmd_machine.dir/torus.cpp.o.d"
  "CMakeFiles/antmd_machine.dir/workload.cpp.o"
  "CMakeFiles/antmd_machine.dir/workload.cpp.o.d"
  "libantmd_machine.a"
  "libantmd_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
