file(REMOVE_RECURSE
  "libantmd_math.a"
)
