# Empty compiler generated dependencies file for antmd_math.
# This may be replaced when dependencies are built.
