file(REMOVE_RECURSE
  "CMakeFiles/antmd_math.dir/fixed.cpp.o"
  "CMakeFiles/antmd_math.dir/fixed.cpp.o.d"
  "CMakeFiles/antmd_math.dir/pbc.cpp.o"
  "CMakeFiles/antmd_math.dir/pbc.cpp.o.d"
  "CMakeFiles/antmd_math.dir/rng.cpp.o"
  "CMakeFiles/antmd_math.dir/rng.cpp.o.d"
  "CMakeFiles/antmd_math.dir/spline.cpp.o"
  "CMakeFiles/antmd_math.dir/spline.cpp.o.d"
  "libantmd_math.a"
  "libantmd_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
