
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/fixed.cpp" "src/math/CMakeFiles/antmd_math.dir/fixed.cpp.o" "gcc" "src/math/CMakeFiles/antmd_math.dir/fixed.cpp.o.d"
  "/root/repo/src/math/pbc.cpp" "src/math/CMakeFiles/antmd_math.dir/pbc.cpp.o" "gcc" "src/math/CMakeFiles/antmd_math.dir/pbc.cpp.o.d"
  "/root/repo/src/math/rng.cpp" "src/math/CMakeFiles/antmd_math.dir/rng.cpp.o" "gcc" "src/math/CMakeFiles/antmd_math.dir/rng.cpp.o.d"
  "/root/repo/src/math/spline.cpp" "src/math/CMakeFiles/antmd_math.dir/spline.cpp.o" "gcc" "src/math/CMakeFiles/antmd_math.dir/spline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/antmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
