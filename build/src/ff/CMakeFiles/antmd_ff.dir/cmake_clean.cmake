file(REMOVE_RECURSE
  "CMakeFiles/antmd_ff.dir/bias.cpp.o"
  "CMakeFiles/antmd_ff.dir/bias.cpp.o.d"
  "CMakeFiles/antmd_ff.dir/bonded.cpp.o"
  "CMakeFiles/antmd_ff.dir/bonded.cpp.o.d"
  "CMakeFiles/antmd_ff.dir/energy.cpp.o"
  "CMakeFiles/antmd_ff.dir/energy.cpp.o.d"
  "CMakeFiles/antmd_ff.dir/forcefield.cpp.o"
  "CMakeFiles/antmd_ff.dir/forcefield.cpp.o.d"
  "CMakeFiles/antmd_ff.dir/nonbonded.cpp.o"
  "CMakeFiles/antmd_ff.dir/nonbonded.cpp.o.d"
  "CMakeFiles/antmd_ff.dir/restraints.cpp.o"
  "CMakeFiles/antmd_ff.dir/restraints.cpp.o.d"
  "CMakeFiles/antmd_ff.dir/vsites.cpp.o"
  "CMakeFiles/antmd_ff.dir/vsites.cpp.o.d"
  "libantmd_ff.a"
  "libantmd_ff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_ff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
