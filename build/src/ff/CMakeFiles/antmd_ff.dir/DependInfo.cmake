
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ff/bias.cpp" "src/ff/CMakeFiles/antmd_ff.dir/bias.cpp.o" "gcc" "src/ff/CMakeFiles/antmd_ff.dir/bias.cpp.o.d"
  "/root/repo/src/ff/bonded.cpp" "src/ff/CMakeFiles/antmd_ff.dir/bonded.cpp.o" "gcc" "src/ff/CMakeFiles/antmd_ff.dir/bonded.cpp.o.d"
  "/root/repo/src/ff/energy.cpp" "src/ff/CMakeFiles/antmd_ff.dir/energy.cpp.o" "gcc" "src/ff/CMakeFiles/antmd_ff.dir/energy.cpp.o.d"
  "/root/repo/src/ff/forcefield.cpp" "src/ff/CMakeFiles/antmd_ff.dir/forcefield.cpp.o" "gcc" "src/ff/CMakeFiles/antmd_ff.dir/forcefield.cpp.o.d"
  "/root/repo/src/ff/nonbonded.cpp" "src/ff/CMakeFiles/antmd_ff.dir/nonbonded.cpp.o" "gcc" "src/ff/CMakeFiles/antmd_ff.dir/nonbonded.cpp.o.d"
  "/root/repo/src/ff/restraints.cpp" "src/ff/CMakeFiles/antmd_ff.dir/restraints.cpp.o" "gcc" "src/ff/CMakeFiles/antmd_ff.dir/restraints.cpp.o.d"
  "/root/repo/src/ff/vsites.cpp" "src/ff/CMakeFiles/antmd_ff.dir/vsites.cpp.o" "gcc" "src/ff/CMakeFiles/antmd_ff.dir/vsites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/antmd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/antmd_math.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/antmd_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/ewald/CMakeFiles/antmd_ewald.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/antmd_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
