# Empty compiler generated dependencies file for antmd_ff.
# This may be replaced when dependencies are built.
