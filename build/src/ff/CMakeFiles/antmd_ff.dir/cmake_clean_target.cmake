file(REMOVE_RECURSE
  "libantmd_ff.a"
)
