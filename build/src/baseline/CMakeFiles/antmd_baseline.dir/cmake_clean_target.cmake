file(REMOVE_RECURSE
  "libantmd_baseline.a"
)
