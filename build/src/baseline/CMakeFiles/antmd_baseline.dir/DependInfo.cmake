
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cluster.cpp" "src/baseline/CMakeFiles/antmd_baseline.dir/cluster.cpp.o" "gcc" "src/baseline/CMakeFiles/antmd_baseline.dir/cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/antmd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/antmd_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/antmd_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/antmd_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
