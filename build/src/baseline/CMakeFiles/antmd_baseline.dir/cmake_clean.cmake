file(REMOVE_RECURSE
  "CMakeFiles/antmd_baseline.dir/cluster.cpp.o"
  "CMakeFiles/antmd_baseline.dir/cluster.cpp.o.d"
  "libantmd_baseline.a"
  "libantmd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
