# Empty compiler generated dependencies file for antmd_baseline.
# This may be replaced when dependencies are built.
