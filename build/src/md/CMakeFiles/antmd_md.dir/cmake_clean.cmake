file(REMOVE_RECURSE
  "CMakeFiles/antmd_md.dir/barostat.cpp.o"
  "CMakeFiles/antmd_md.dir/barostat.cpp.o.d"
  "CMakeFiles/antmd_md.dir/constraints.cpp.o"
  "CMakeFiles/antmd_md.dir/constraints.cpp.o.d"
  "CMakeFiles/antmd_md.dir/neighbor.cpp.o"
  "CMakeFiles/antmd_md.dir/neighbor.cpp.o.d"
  "CMakeFiles/antmd_md.dir/simulation.cpp.o"
  "CMakeFiles/antmd_md.dir/simulation.cpp.o.d"
  "CMakeFiles/antmd_md.dir/state.cpp.o"
  "CMakeFiles/antmd_md.dir/state.cpp.o.d"
  "CMakeFiles/antmd_md.dir/thermostat.cpp.o"
  "CMakeFiles/antmd_md.dir/thermostat.cpp.o.d"
  "libantmd_md.a"
  "libantmd_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
