# Empty compiler generated dependencies file for antmd_md.
# This may be replaced when dependencies are built.
