file(REMOVE_RECURSE
  "libantmd_md.a"
)
