# Empty dependencies file for antmd_runtime.
# This may be replaced when dependencies are built.
