file(REMOVE_RECURSE
  "libantmd_runtime.a"
)
