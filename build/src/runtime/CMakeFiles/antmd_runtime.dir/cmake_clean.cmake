file(REMOVE_RECURSE
  "CMakeFiles/antmd_runtime.dir/decomposition.cpp.o"
  "CMakeFiles/antmd_runtime.dir/decomposition.cpp.o.d"
  "CMakeFiles/antmd_runtime.dir/engine.cpp.o"
  "CMakeFiles/antmd_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/antmd_runtime.dir/machine_sim.cpp.o"
  "CMakeFiles/antmd_runtime.dir/machine_sim.cpp.o.d"
  "CMakeFiles/antmd_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/antmd_runtime.dir/scheduler.cpp.o.d"
  "libantmd_runtime.a"
  "libantmd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
