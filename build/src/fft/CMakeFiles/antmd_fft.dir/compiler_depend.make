# Empty compiler generated dependencies file for antmd_fft.
# This may be replaced when dependencies are built.
