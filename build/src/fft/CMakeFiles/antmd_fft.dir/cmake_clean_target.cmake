file(REMOVE_RECURSE
  "libantmd_fft.a"
)
