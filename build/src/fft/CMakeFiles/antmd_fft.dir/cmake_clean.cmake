file(REMOVE_RECURSE
  "CMakeFiles/antmd_fft.dir/distributed.cpp.o"
  "CMakeFiles/antmd_fft.dir/distributed.cpp.o.d"
  "CMakeFiles/antmd_fft.dir/fft.cpp.o"
  "CMakeFiles/antmd_fft.dir/fft.cpp.o.d"
  "CMakeFiles/antmd_fft.dir/fft3d.cpp.o"
  "CMakeFiles/antmd_fft.dir/fft3d.cpp.o.d"
  "libantmd_fft.a"
  "libantmd_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
