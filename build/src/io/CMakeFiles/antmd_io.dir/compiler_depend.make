# Empty compiler generated dependencies file for antmd_io.
# This may be replaced when dependencies are built.
