file(REMOVE_RECURSE
  "libantmd_io.a"
)
