file(REMOVE_RECURSE
  "CMakeFiles/antmd_io.dir/config.cpp.o"
  "CMakeFiles/antmd_io.dir/config.cpp.o.d"
  "CMakeFiles/antmd_io.dir/system_io.cpp.o"
  "CMakeFiles/antmd_io.dir/system_io.cpp.o.d"
  "CMakeFiles/antmd_io.dir/trajectory.cpp.o"
  "CMakeFiles/antmd_io.dir/trajectory.cpp.o.d"
  "libantmd_io.a"
  "libantmd_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
