# Empty dependencies file for fep_decoupling.
# This may be replaced when dependencies are built.
