file(REMOVE_RECURSE
  "CMakeFiles/fep_decoupling.dir/fep_decoupling.cpp.o"
  "CMakeFiles/fep_decoupling.dir/fep_decoupling.cpp.o.d"
  "fep_decoupling"
  "fep_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fep_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
