file(REMOVE_RECURSE
  "CMakeFiles/go_folding.dir/go_folding.cpp.o"
  "CMakeFiles/go_folding.dir/go_folding.cpp.o.d"
  "go_folding"
  "go_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/go_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
