# Empty compiler generated dependencies file for go_folding.
# This may be replaced when dependencies are built.
