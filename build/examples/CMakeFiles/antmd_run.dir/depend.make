# Empty dependencies file for antmd_run.
# This may be replaced when dependencies are built.
