file(REMOVE_RECURSE
  "CMakeFiles/antmd_run.dir/antmd_run.cpp.o"
  "CMakeFiles/antmd_run.dir/antmd_run.cpp.o.d"
  "antmd_run"
  "antmd_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmd_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
