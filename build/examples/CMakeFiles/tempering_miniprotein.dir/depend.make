# Empty dependencies file for tempering_miniprotein.
# This may be replaced when dependencies are built.
