file(REMOVE_RECURSE
  "CMakeFiles/tempering_miniprotein.dir/tempering_miniprotein.cpp.o"
  "CMakeFiles/tempering_miniprotein.dir/tempering_miniprotein.cpp.o.d"
  "tempering_miniprotein"
  "tempering_miniprotein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempering_miniprotein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
