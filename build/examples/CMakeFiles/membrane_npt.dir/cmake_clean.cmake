file(REMOVE_RECURSE
  "CMakeFiles/membrane_npt.dir/membrane_npt.cpp.o"
  "CMakeFiles/membrane_npt.dir/membrane_npt.cpp.o.d"
  "membrane_npt"
  "membrane_npt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membrane_npt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
