# Empty compiler generated dependencies file for membrane_npt.
# This may be replaced when dependencies are built.
