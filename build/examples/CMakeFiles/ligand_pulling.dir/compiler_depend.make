# Empty compiler generated dependencies file for ligand_pulling.
# This may be replaced when dependencies are built.
