file(REMOVE_RECURSE
  "CMakeFiles/ligand_pulling.dir/ligand_pulling.cpp.o"
  "CMakeFiles/ligand_pulling.dir/ligand_pulling.cpp.o.d"
  "ligand_pulling"
  "ligand_pulling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ligand_pulling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
