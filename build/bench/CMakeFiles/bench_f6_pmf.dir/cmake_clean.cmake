file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_pmf.dir/bench_f6_pmf.cpp.o"
  "CMakeFiles/bench_f6_pmf.dir/bench_f6_pmf.cpp.o.d"
  "bench_f6_pmf"
  "bench_f6_pmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_pmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
