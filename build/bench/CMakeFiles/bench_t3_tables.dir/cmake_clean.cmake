file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_tables.dir/bench_t3_tables.cpp.o"
  "CMakeFiles/bench_t3_tables.dir/bench_t3_tables.cpp.o.d"
  "bench_t3_tables"
  "bench_t3_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
