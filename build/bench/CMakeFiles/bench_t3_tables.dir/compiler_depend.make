# Empty compiler generated dependencies file for bench_t3_tables.
# This may be replaced when dependencies are built.
