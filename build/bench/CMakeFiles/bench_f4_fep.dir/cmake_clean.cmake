file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_fep.dir/bench_f4_fep.cpp.o"
  "CMakeFiles/bench_f4_fep.dir/bench_f4_fep.cpp.o.d"
  "bench_f4_fep"
  "bench_f4_fep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_fep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
