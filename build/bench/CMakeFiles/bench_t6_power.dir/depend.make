# Empty dependencies file for bench_t6_power.
# This may be replaced when dependencies are built.
