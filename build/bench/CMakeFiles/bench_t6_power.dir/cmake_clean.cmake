file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_power.dir/bench_t6_power.cpp.o"
  "CMakeFiles/bench_t6_power.dir/bench_t6_power.cpp.o.d"
  "bench_t6_power"
  "bench_t6_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
