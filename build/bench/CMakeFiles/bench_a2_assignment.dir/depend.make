# Empty dependencies file for bench_a2_assignment.
# This may be replaced when dependencies are built.
