file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_assignment.dir/bench_a2_assignment.cpp.o"
  "CMakeFiles/bench_a2_assignment.dir/bench_a2_assignment.cpp.o.d"
  "bench_a2_assignment"
  "bench_a2_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
