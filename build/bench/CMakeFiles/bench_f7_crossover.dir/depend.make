# Empty dependencies file for bench_f7_crossover.
# This may be replaced when dependencies are built.
