file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_crossover.dir/bench_f7_crossover.cpp.o"
  "CMakeFiles/bench_f7_crossover.dir/bench_f7_crossover.cpp.o.d"
  "bench_f7_crossover"
  "bench_f7_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
