file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_tempering.dir/bench_f3_tempering.cpp.o"
  "CMakeFiles/bench_f3_tempering.dir/bench_f3_tempering.cpp.o.d"
  "bench_f3_tempering"
  "bench_f3_tempering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_tempering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
