# Empty dependencies file for bench_t5_determinism.
# This may be replaced when dependencies are built.
