file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_determinism.dir/bench_t5_determinism.cpp.o"
  "CMakeFiles/bench_t5_determinism.dir/bench_t5_determinism.cpp.o.d"
  "bench_t5_determinism"
  "bench_t5_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
