file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_gse.dir/bench_f5_gse.cpp.o"
  "CMakeFiles/bench_f5_gse.dir/bench_f5_gse.cpp.o.d"
  "bench_f5_gse"
  "bench_f5_gse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_gse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
