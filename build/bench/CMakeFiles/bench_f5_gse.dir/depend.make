# Empty dependencies file for bench_f5_gse.
# This may be replaced when dependencies are built.
