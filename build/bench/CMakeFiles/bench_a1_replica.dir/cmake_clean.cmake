file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_replica.dir/bench_a1_replica.cpp.o"
  "CMakeFiles/bench_a1_replica.dir/bench_a1_replica.cpp.o.d"
  "bench_a1_replica"
  "bench_a1_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
