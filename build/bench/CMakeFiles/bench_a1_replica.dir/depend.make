# Empty dependencies file for bench_a1_replica.
# This may be replaced when dependencies are built.
