file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_hardware.dir/bench_a3_hardware.cpp.o"
  "CMakeFiles/bench_a3_hardware.dir/bench_a3_hardware.cpp.o.d"
  "bench_a3_hardware"
  "bench_a3_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
