# Empty dependencies file for bench_a3_hardware.
# This may be replaced when dependencies are built.
