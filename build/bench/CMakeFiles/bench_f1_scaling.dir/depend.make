# Empty dependencies file for bench_f1_scaling.
# This may be replaced when dependencies are built.
