file(REMOVE_RECURSE
  "CMakeFiles/system_io_test.dir/system_io_test.cpp.o"
  "CMakeFiles/system_io_test.dir/system_io_test.cpp.o.d"
  "system_io_test"
  "system_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
