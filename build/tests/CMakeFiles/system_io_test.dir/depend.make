# Empty dependencies file for system_io_test.
# This may be replaced when dependencies are built.
