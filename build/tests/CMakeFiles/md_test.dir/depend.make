# Empty dependencies file for md_test.
# This may be replaced when dependencies are built.
