file(REMOVE_RECURSE
  "CMakeFiles/forms_test.dir/forms_test.cpp.o"
  "CMakeFiles/forms_test.dir/forms_test.cpp.o.d"
  "forms_test"
  "forms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
