file(REMOVE_RECURSE
  "CMakeFiles/go_test.dir/go_test.cpp.o"
  "CMakeFiles/go_test.dir/go_test.cpp.o.d"
  "go_test"
  "go_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/go_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
