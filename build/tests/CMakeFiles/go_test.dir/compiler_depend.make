# Empty compiler generated dependencies file for go_test.
# This may be replaced when dependencies are built.
