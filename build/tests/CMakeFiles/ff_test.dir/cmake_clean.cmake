file(REMOVE_RECURSE
  "CMakeFiles/ff_test.dir/ff_test.cpp.o"
  "CMakeFiles/ff_test.dir/ff_test.cpp.o.d"
  "ff_test"
  "ff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
