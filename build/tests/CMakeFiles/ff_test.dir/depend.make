# Empty dependencies file for ff_test.
# This may be replaced when dependencies are built.
