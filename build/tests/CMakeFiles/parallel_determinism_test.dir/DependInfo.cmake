
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_determinism_test.cpp" "tests/CMakeFiles/parallel_determinism_test.dir/parallel_determinism_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_determinism_test.dir/parallel_determinism_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/antmd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/antmd_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/antmd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/antmd_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/antmd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/antmd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/antmd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/ff/CMakeFiles/antmd_ff.dir/DependInfo.cmake"
  "/root/repo/build/src/ewald/CMakeFiles/antmd_ewald.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/antmd_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/antmd_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/antmd_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/antmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
