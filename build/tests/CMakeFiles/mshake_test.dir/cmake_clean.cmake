file(REMOVE_RECURSE
  "CMakeFiles/mshake_test.dir/mshake_test.cpp.o"
  "CMakeFiles/mshake_test.dir/mshake_test.cpp.o.d"
  "mshake_test"
  "mshake_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
