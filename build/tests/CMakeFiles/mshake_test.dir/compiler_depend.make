# Empty compiler generated dependencies file for mshake_test.
# This may be replaced when dependencies are built.
