#!/usr/bin/env bash
# Build the ASan-instrumented tree and run the tests that exercise memory
# ownership across the checkpoint/restore, fault-injection and health-guard
# paths (serialized buffers, rollback restores, node-failure remaps) under
# AddressSanitizer.
#
# Usage: scripts/run_asan_tests.sh [extra ctest -R regex]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"

# Checkpointing touches util (serialize), io (v2 container), md/runtime
# (restore paths) and resilience (guard rollback); fault_test drives the
# injected failures end to end.
FILTER="${1:-util_test|io_test|md_test|runtime_test|sampling_test|checkpoint_test|fault_test|supervisor_test|profile_test|simd_kernel_test}"

ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}" \
  ctest --test-dir build-asan -R "$FILTER" --output-on-failure

# The golden-physics harness walks every tile mask of the cluster-pair
# kernel (gather buffers, padding slots, chunk scratch) — run it under ASan
# so a layout bug shows up as an instrumented fault, not a physics diff.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}" \
  ctest --test-dir build-asan -L golden --output-on-failure
