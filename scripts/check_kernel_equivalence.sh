#!/usr/bin/env bash
# Differential check of the nonbonded kernels on the bench systems:
#
#   1. antmd_run with nonbonded_kernel = pair vs = cluster on identical
#      configs, byte-compared trajectories (the kernels are specified to be
#      bit-identical, so `cmp` — not a tolerance diff — is the bar);
#   2. thread invariance: cluster kernel at --threads 1 vs 2 vs 8;
#   3. the cross-ISA matrix: every compiled-and-runnable SIMD variant
#      (ANTMD_FORCE_ISA = sse41 / avx2 / avx512) x threads {1, 2, 8} must
#      reproduce the forced-scalar trajectory byte for byte;
#   4. the golden physics fixtures (golden_test) must pass under every
#      forced ISA.
#
# Variants the build or CPU lacks are skipped with a note, never failed:
# the dispatcher itself refuses them, which is the behaviour under test.
#
# Usage: scripts/check_kernel_equivalence.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
RUN="${BUILD_DIR}/examples/antmd_run"
GOLDEN="${BUILD_DIR}/tests/golden_test"
if [ ! -x "$RUN" ]; then
  echo "building antmd_run in ${BUILD_DIR}..."
  cmake -B "${BUILD_DIR}" -S . > /dev/null
  cmake --build "${BUILD_DIR}" --target antmd_run -j > /dev/null
fi

WORK="$(mktemp -d /tmp/antmd_kernel_eq.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

# name | base config body (kernel/xyz keys appended per run)
write_base() {
  case "$1" in
    ljfluid512)
      cat <<'EOF'
system = ljfluid
size = 512
steps = 100
dt_fs = 2.0
temperature = 120
thermostat = langevin
electrostatics = none
cutoff = 8.0
skin = 1.0
seed = 3
EOF
      ;;
    water216)
      cat <<'EOF'
system = water
size = 216
steps = 60
dt_fs = 2.0
temperature = 300
thermostat = nosehoover
electrostatics = gse
cutoff = 6.0
skin = 1.0
seed = 3
EOF
      ;;
    polymer)
      cat <<'EOF'
system = polymer
size = 216
chain_length = 12
steps = 60
dt_fs = 2.0
temperature = 300
thermostat = langevin
electrostatics = cutoff
cutoff = 7.0
skin = 1.0
seed = 3
EOF
      ;;
  esac
}

run_one() {  # system kernel threads isa -> trajectory path
  local sys="$1" kernel="$2" threads="$3" isa="${4:-}"
  local tag="${sys}_${kernel}_t${threads}${isa:+_${isa}}"
  local cfg="${WORK}/${tag}.cfg"
  write_base "$sys" > "$cfg"
  {
    echo "nonbonded_kernel = ${kernel}"
    echo "threads = ${threads}"
    echo "xyz = ${WORK}/${tag}.xyz"
  } >> "$cfg"
  ANTMD_FORCE_ISA="$isa" "$RUN" "$cfg" > "${WORK}/${tag}.log" 2>&1 \
    || { echo "FAIL: antmd_run ${tag} exited non-zero"; \
         tail -5 "${WORK}/${tag}.log"; exit 1; }
  echo "${WORK}/${tag}.xyz"
}

# Which SIMD variants can this build + CPU actually run?  A 1-step probe
# under the forced ISA answers authoritatively: the dispatcher throws a
# ConfigError at startup for anything it cannot honour.
probe_cfg="${WORK}/probe.cfg"
write_base ljfluid512 | sed 's/^steps = 100$/steps = 1/' > "$probe_cfg"
SIMD_ISAS=()
for isa in sse41 avx2 avx512; do
  if ANTMD_FORCE_ISA="$isa" "$RUN" "$probe_cfg" \
       > "${WORK}/probe_${isa}.log" 2>&1; then
    SIMD_ISAS+=("$isa")
  elif grep -q "not supported by this build/CPU" "${WORK}/probe_${isa}.log"
  then
    echo "SKIP ${isa}: not supported by this build/CPU"
  else
    echo "FAIL: ${isa} probe run died for a reason other than support:"
    tail -5 "${WORK}/probe_${isa}.log"
    exit 1
  fi
done
echo "cross-ISA matrix: scalar ${SIMD_ISAS[*]-}"

status=0
for sys in ljfluid512 water216 polymer; do
  pair_xyz="$(run_one "$sys" pair 1)"
  cluster_xyz="$(run_one "$sys" cluster 1)"
  if cmp -s "$pair_xyz" "$cluster_xyz"; then
    echo "OK  ${sys}: pair == cluster (byte-identical trajectory)"
  else
    echo "FAIL ${sys}: pair and cluster trajectories differ:"
    cmp "$pair_xyz" "$cluster_xyz" || true
    status=1
  fi

  t1="$(run_one "$sys" cluster 1)"
  for t in 2 8; do
    tn="$(run_one "$sys" cluster "$t")"
    if cmp -s "$t1" "$tn"; then
      echo "OK  ${sys}: cluster --threads 1 == --threads ${t}"
    else
      echo "FAIL ${sys}: cluster kernel not thread-invariant at ${t} threads:"
      cmp "$t1" "$tn" || true
      status=1
    fi
  done

  # Cross-ISA: every SIMD variant, at every thread count, against the
  # forced-scalar single-thread reference.
  scalar_xyz="$(run_one "$sys" cluster 1 scalar)"
  if ! cmp -s "$scalar_xyz" "$cluster_xyz"; then
    echo "FAIL ${sys}: forced-scalar differs from auto-dispatch trajectory:"
    cmp "$scalar_xyz" "$cluster_xyz" || true
    status=1
  fi
  for isa in ${SIMD_ISAS[@]+"${SIMD_ISAS[@]}"}; do
    for t in 1 2 8; do
      v="$(run_one "$sys" cluster "$t" "$isa")"
      if cmp -s "$scalar_xyz" "$v"; then
        echo "OK  ${sys}: ${isa} --threads ${t} == scalar"
      else
        echo "FAIL ${sys}: ${isa} --threads ${t} diverges from scalar:"
        cmp "$scalar_xyz" "$v" || true
        status=1
      fi
    done
  done
done

# Golden physics fixtures under every forced ISA (includes the exact
# pair-vs-cluster raw-quanta layer, so this pins each variant to the
# recorded physics, not just to the scalar kernel).
if [ -x "$GOLDEN" ]; then
  for isa in scalar ${SIMD_ISAS[@]+"${SIMD_ISAS[@]}"}; do
    if ANTMD_FORCE_ISA="$isa" "$GOLDEN" > "${WORK}/golden_${isa}.log" 2>&1
    then
      echo "OK  golden_test under ANTMD_FORCE_ISA=${isa}"
    else
      echo "FAIL golden_test under ANTMD_FORCE_ISA=${isa}:"
      tail -15 "${WORK}/golden_${isa}.log"
      status=1
    fi
  done
else
  echo "SKIP golden_test: ${GOLDEN} not built"
fi

if [ "$status" -eq 0 ]; then
  echo "kernel equivalence: all checks passed"
else
  echo "kernel equivalence: FAILURES above"
fi
exit "$status"
