#!/usr/bin/env bash
# Differential check of the two nonbonded kernels on the bench systems:
# runs antmd_run with nonbonded_kernel = pair and = cluster on identical
# configs and byte-compares the trajectories (the kernels are specified to
# be bit-identical, so `cmp` — not a tolerance diff — is the bar).  Also
# verifies the cluster kernel is thread-invariant: --threads 1 vs 2 vs 8
# must produce byte-identical trajectories.
#
# Usage: scripts/check_kernel_equivalence.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
RUN="${BUILD_DIR}/examples/antmd_run"
if [ ! -x "$RUN" ]; then
  echo "building antmd_run in ${BUILD_DIR}..."
  cmake -B "${BUILD_DIR}" -S . > /dev/null
  cmake --build "${BUILD_DIR}" --target antmd_run -j > /dev/null
fi

WORK="$(mktemp -d /tmp/antmd_kernel_eq.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

# name | base config body (kernel/xyz keys appended per run)
write_base() {
  case "$1" in
    ljfluid512)
      cat <<'EOF'
system = ljfluid
size = 512
steps = 100
dt_fs = 2.0
temperature = 120
thermostat = langevin
electrostatics = none
cutoff = 8.0
skin = 1.0
seed = 3
EOF
      ;;
    water216)
      cat <<'EOF'
system = water
size = 216
steps = 60
dt_fs = 2.0
temperature = 300
thermostat = nosehoover
electrostatics = gse
cutoff = 6.0
skin = 1.0
seed = 3
EOF
      ;;
    polymer)
      cat <<'EOF'
system = polymer
size = 216
chain_length = 12
steps = 60
dt_fs = 2.0
temperature = 300
thermostat = langevin
electrostatics = cutoff
cutoff = 7.0
skin = 1.0
seed = 3
EOF
      ;;
  esac
}

run_one() {  # system kernel threads -> trajectory path
  local sys="$1" kernel="$2" threads="$3"
  local tag="${sys}_${kernel}_t${threads}"
  local cfg="${WORK}/${tag}.cfg"
  write_base "$sys" > "$cfg"
  {
    echo "nonbonded_kernel = ${kernel}"
    echo "threads = ${threads}"
    echo "xyz = ${WORK}/${tag}.xyz"
  } >> "$cfg"
  "$RUN" "$cfg" > "${WORK}/${tag}.log" 2>&1 \
    || { echo "FAIL: antmd_run ${tag} exited non-zero"; \
         tail -5 "${WORK}/${tag}.log"; exit 1; }
  echo "${WORK}/${tag}.xyz"
}

status=0
for sys in ljfluid512 water216 polymer; do
  pair_xyz="$(run_one "$sys" pair 1)"
  cluster_xyz="$(run_one "$sys" cluster 1)"
  if cmp -s "$pair_xyz" "$cluster_xyz"; then
    echo "OK  ${sys}: pair == cluster (byte-identical trajectory)"
  else
    echo "FAIL ${sys}: pair and cluster trajectories differ:"
    cmp "$pair_xyz" "$cluster_xyz" || true
    status=1
  fi

  t1="$(run_one "$sys" cluster 1)"
  for t in 2 8; do
    tn="$(run_one "$sys" cluster "$t")"
    if cmp -s "$t1" "$tn"; then
      echo "OK  ${sys}: cluster --threads 1 == --threads ${t}"
    else
      echo "FAIL ${sys}: cluster kernel not thread-invariant at ${t} threads:"
      cmp "$t1" "$tn" || true
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "kernel equivalence: all checks passed"
else
  echo "kernel equivalence: FAILURES above"
fi
exit "$status"
