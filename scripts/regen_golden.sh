#!/usr/bin/env bash
# Regenerates the golden-physics fixtures in tests/golden/ from the current
# kernels.  Review the diff before committing: a fixture change means the
# physics changed, and that had better be intentional.
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [ ! -x "${BUILD_DIR}/tests/golden_test" ]; then
  echo "building golden_test in ${BUILD_DIR}..."
  cmake -B "${BUILD_DIR}" -S . > /dev/null
  cmake --build "${BUILD_DIR}" --target golden_test -j > /dev/null
fi

mkdir -p tests/golden
ANTMD_GOLDEN_REGEN=1 "${BUILD_DIR}/tests/golden_test" \
  --gtest_filter='GoldenTest.LjFluid:GoldenTest.SolvatedMiniprotein:GoldenTest.IonicSolution'

echo
echo "fixtures written to tests/golden/:"
ls -l tests/golden/
echo
echo "verifying against the fresh fixtures..."
"${BUILD_DIR}/tests/golden_test"
