#!/usr/bin/env bash
# Soak the supervisor with N seeded random fault schedules (tier 2).
#
# Each schedule arms one deterministically-derived fault (kind, fire point,
# payload from a splitmix64 stream keyed by the schedule index) and runs a
# supervised machine simulation through it; see tests/soak_test.cpp for the
# invariants checked (bit-identical recovery or clean escalation).
#
# Usage: scripts/run_soak.sh [N]
#   N  number of random fault schedules (default 25; CI's `ctest -L soak`
#      runs the same binary with its built-in small default)
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-25}"

cmake -B build -S . >/dev/null
cmake --build build --target soak_test -j "$(nproc)"

ANTMD_SOAK_SCHEDULES="$N" \
  ctest --test-dir build -L soak --output-on-failure
