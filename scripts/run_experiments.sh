#!/usr/bin/env bash
# Regenerates every reconstructed table/figure (DESIGN.md experiment index)
# and the micro-benchmarks, collecting output into bench_output.txt.
set -u
cd "$(dirname "$0")/.."

BUILD=${1:-build}
OUT=bench_output.txt

if [ ! -d "$BUILD/bench" ]; then
  echo "build directory '$BUILD' not found — run cmake/ninja first" >&2
  exit 1
fi

: > "$OUT"
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$OUT"
  "$b" 2>&1 | tee -a "$OUT"
  echo | tee -a "$OUT"
done
echo "wrote $OUT"
