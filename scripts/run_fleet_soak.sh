#!/usr/bin/env bash
# Soak the fleet scheduler: generate a manifest of N mixed-size runs with
# deterministic per-run fault schedules (transient force poisoning, failing
# mirrors, unrecoverable poison, hung machine nodes), push it through the
# antmd_fleet CLI under a tight memory budget (so eviction/rehydration
# cycles continuously), and assert every run lands in a terminal state:
# completed, or quarantined for exactly the runs built to be unrecoverable.
#
# Usage: scripts/run_fleet_soak.sh [N]
#   N  number of runs in the fleet (default 64, the tier-2 floor)
#
# Env:
#   ANTMD_FLEET_BIN  path to a prebuilt antmd_fleet binary; when unset the
#                    script configures/builds the default tree (like
#                    scripts/run_soak.sh).  ctest's `-L soak` registration
#                    sets it to the freshly built CLI.
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-64}"
if (( N < 64 )); then
  echo "run_fleet_soak: N must be >= 64 (got $N)" >&2
  exit 2
fi

if [[ -z "${ANTMD_FLEET_BIN:-}" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build --target antmd_fleet_cli -j "$(nproc)" >/dev/null
  ANTMD_FLEET_BIN="build/examples/antmd_fleet"
fi

WORK="$(mktemp -d /tmp/antmd_fleet_soak.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT
MANIFEST="$WORK/fleet.ini"
STATUS="$WORK/status.json"

# --- deterministic manifest -------------------------------------------------
{
  echo "[fleet]"
  echo "max_active = 12"
  echo "memory_budget_mb = 2"        # tight: forces eviction round trips
  echo "slice_steps = 16"
  echo "checkpoint_dir = $WORK/ckpt"
  echo "status_path = $STATUS"
  echo "status_interval = 8"
  echo
  echo "[defaults]"
  echo "system = ljfluid"
  echo "dt_fs = 4.0"
  echo "temperature = 120"
  echo "cutoff = 7.0"
  echo "steps = 48"
  echo "snapshot_interval = 16"
} > "$MANIFEST"

expected_quarantined=0
for (( i = 0; i < N; ++i )); do
  {
    echo
    echo "[run soak-$i]"
    echo "seed = $(( i + 1 ))"
    if (( i % 2 )); then echo "size = 216"; else echo "size = 125"; fi
    echo "priority = $(( i % 3 + 1 ))"
    if (( i % 16 == 7 )); then
      # Unrecoverable: poisoned on every force evaluation -> quarantine.
      echo "fault = nan_force:0:-1:$i"
    elif (( i % 8 == 3 )); then
      # Failing mirror: every checkpoint write fails, run degrades and
      # completes on the in-memory snapshot ring.
      echo "fault = io_write_fail:0:-1"
    elif (( i % 4 == 1 )); then
      # One transient force poisoning at a per-run deterministic step.
      echo "fault = nan_force:$(( i % 40 + 2 )):1:$(( i % 100 ))"
    elif (( i % 10 == 6 )); then
      echo "engine = machine"
      echo "nodes = 2"
      echo "dt_fs = 2.0"
      echo "steps = 24"
      echo "snapshot_interval = 8"
      echo "fault = node_hang:$(( i % 12 + 3 )):1:$(( i % 8 ))"
      echo "watchdog_ms = 1.0"
    fi
  } >> "$MANIFEST"
  if (( i % 16 == 7 )); then (( ++expected_quarantined )); fi
done

echo "run_fleet_soak: $N runs, expecting $expected_quarantined quarantines"

# --- run ---------------------------------------------------------------------
# Exit 6 = some runs quarantined (expected here); anything else is a failure.
rc=0
"$ANTMD_FLEET_BIN" "$MANIFEST" --quiet || rc=$?
if (( rc != 6 && rc != 0 )); then
  echo "run_fleet_soak: antmd_fleet exited $rc" >&2
  exit 1
fi

# --- verify terminal states --------------------------------------------------
completed=$(grep -c '"phase": "completed"' "$STATUS" || true)
quarantined=$(grep -c '"phase": "quarantined"' "$STATUS" || true)
nonterminal=$(grep -cE '"phase": "(queued|running|evicted)"' "$STATUS" || true)

echo "run_fleet_soak: completed=$completed quarantined=$quarantined" \
     "nonterminal=$nonterminal"

fail=0
if (( nonterminal != 0 )); then
  echo "run_fleet_soak: FAIL — $nonterminal runs left in a non-terminal state" >&2
  fail=1
fi
if (( quarantined != expected_quarantined )); then
  echo "run_fleet_soak: FAIL — quarantined $quarantined, expected" \
       "$expected_quarantined" >&2
  fail=1
fi
if (( completed + quarantined != N )); then
  echo "run_fleet_soak: FAIL — completed+quarantined=$((completed + quarantined)), expected $N" >&2
  fail=1
fi
if (( fail )); then
  exit 1
fi
echo "run_fleet_soak: PASS"
