#!/usr/bin/env bash
# Telemetry overhead budget check (DESIGN.md "Observability"): a run with
# metrics enabled must stay within MAX_OVERHEAD_PCT (default 2%) of the
# same run with --no-telemetry, and so must a run with the attribution
# profiler on top (--profile collects per-class network attribution,
# per-link loads and task-graph critical paths; all step-scale feeds).
#
# The profiling-OFF run must pay nothing per message: every profiler call
# site gates on obs::profiling_enabled(), a single relaxed atomic load, so
# the telemetry-on / profiling-off configuration measures that gate too —
# a regression that does work behind the gate shows up here as telemetry
# overhead.
#
# Methodology: run each configuration REPS times and compare the *minimum*
# wall time per configuration — the minimum is the run least disturbed by
# scheduler noise, so it isolates the instrumentation cost itself.  Tracing
# is deliberately left off: the budget covers always-on metrics; trace
# recording is opt-in and buffered.
#
# Usage: scripts/check_metrics_overhead.sh [build-dir] [config-file]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CONFIG="${2:-examples/configs/water_machine.cfg}"
REPS="${REPS:-5}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-2.0}"
RUN_BIN="$BUILD_DIR/examples/antmd_run"

if [[ ! -x "$RUN_BIN" ]]; then
  echo "error: $RUN_BIN not found — build the default preset first" >&2
  exit 2
fi

# Prints the minimum wall-clock seconds over $REPS runs of "$@".
min_wall() {
  local best=""
  for _ in $(seq "$REPS"); do
    local start end elapsed
    start=$(date +%s.%N)
    "$@" > /dev/null
    end=$(date +%s.%N)
    elapsed=$(echo "$end $start" | awk '{printf "%.6f", $1 - $2}')
    if [[ -z "$best" ]] || awk -v a="$elapsed" -v b="$best" \
        'BEGIN {exit !(a < b)}'; then
      best="$elapsed"
    fi
  done
  echo "$best"
}

echo "measuring: $RUN_BIN $CONFIG ($REPS reps per configuration)"
off=$(min_wall "$RUN_BIN" "$CONFIG" --no-telemetry)
on=$(min_wall "$RUN_BIN" "$CONFIG")
prof=$(min_wall "$RUN_BIN" "$CONFIG" --profile)

overhead=$(echo "$on $off" | awk '{printf "%.2f", ($1 - $2) / $2 * 100.0}')
prof_overhead=$(echo "$prof $off" | \
    awk '{printf "%.2f", ($1 - $2) / $2 * 100.0}')
echo "telemetry off: ${off}s   telemetry on: ${on}s   overhead: ${overhead}%"
echo "profiling on:  ${prof}s   overhead vs off: ${prof_overhead}%"

status=0
if awk -v o="$overhead" -v cap="$MAX_OVERHEAD_PCT" 'BEGIN {exit !(o > cap)}'
then
  echo "FAIL: telemetry overhead ${overhead}% exceeds budget ${MAX_OVERHEAD_PCT}%" >&2
  status=1
fi
if awk -v o="$prof_overhead" -v cap="$MAX_OVERHEAD_PCT" \
    'BEGIN {exit !(o > cap)}'
then
  echo "FAIL: profiling overhead ${prof_overhead}% exceeds budget ${MAX_OVERHEAD_PCT}%" >&2
  status=1
fi
[[ $status -ne 0 ]] && exit $status
echo "OK: within the ${MAX_OVERHEAD_PCT}% budget"
