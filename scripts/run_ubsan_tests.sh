#!/usr/bin/env bash
# Build the UBSan-instrumented tree and run the tests that push arithmetic
# to its edges: fixed-point conversion/overflow, CRC table generation, the
# bit-flip fault payload decoding (bit indices derived from arbitrary
# payload integers) and the audit digest serialization.  Undefined behaviour
# in any of these would silently change the "deterministic" baseline the
# audit engine compares against, so they get their own sanitizer pass.
#
# Usage: scripts/run_ubsan_tests.sh [extra ctest -R regex]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset ubsan
cmake --build --preset ubsan -j "$(nproc)"

# audit_test covers the CRC-64 kernel, scrubber bit addressing and the
# shadow-replay digest path; the rest mirror the ASan suite so both
# sanitizers see the same checkpoint/fault/recovery surface.
FILTER="${1:-util_test|io_test|md_test|runtime_test|sampling_test|checkpoint_test|fault_test|supervisor_test|profile_test|audit_test|simd_kernel_test}"

UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}" \
  ctest --test-dir build-ubsan -R "$FILTER" --output-on-failure

# The golden-physics harness exercises every tile mask of the cluster-pair
# kernel, where shifts and fixed-point casts are densest — run it under
# UBSan so an out-of-range conversion shows up as an instrumented fault,
# not a physics diff.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}" \
  ctest --test-dir build-ubsan -L golden --output-on-failure
