#!/usr/bin/env bash
# Network-attribution consistency check (DESIGN.md "Attribution & critical
# path"): runs the bench F1 workload (water-216, cluster kernel, GSE) on
# two modeled torus sizes with the attribution profiler on, and asserts
# that the per-message-class network times exactly partition the aggregate
# modeled network time — the sum of class fractions must equal 1 within
# 1e-9 (the class *totals* are bit-exact by construction; the fraction sum
# only divides them by the same aggregate).
#
# Results are recorded into BENCH_f1_scaling.json (created if absent,
# merged if the bench wrote it first) under netcheck_<nodes>n_* keys.
#
# Usage: scripts/check_network_attribution.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
RUN_BIN="$BUILD_DIR/examples/antmd_run"
STEPS="${STEPS:-60}"
TOLERANCE="${TOLERANCE:-1e-9}"
REPORT="BENCH_f1_scaling.json"

if [[ ! -x "$RUN_BIN" ]]; then
  echo "error: $RUN_BIN not found — build the default preset first" >&2
  exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

status=0
for edge in 2 3; do
  nodes=$((edge * edge * edge))
  cfg="$workdir/f1_${nodes}n.cfg"
  out="$workdir/profile_${nodes}n.json"
  cat > "$cfg" <<EOF
system = water
size = 216
engine = machine
nodes = $edge
steps = $STEPS
dt_fs = 2.0
thermostat = langevin
electrostatics = gse
cutoff = 6.0
skin = 1.0
EOF
  echo "running F1 workload on ${nodes} nodes (${STEPS} steps)..."
  "$RUN_BIN" "$cfg" --profile-out "$out" > /dev/null

  if ! python3 - "$out" "$nodes" "$TOLERANCE" "$REPORT" <<'PY'
import json, sys

path, nodes, tol, report = sys.argv[1], int(sys.argv[2]), float(sys.argv[3]), sys.argv[4]
doc = json.load(open(path))
assert doc["schema"] == "antmd.profile/v1", doc.get("schema")

net = doc["network"]
total = net["total_s"]
class_sum = sum(c["total_s"] for c in net["classes"].values())
frac_sum = sum(c["fraction"] for c in net["classes"].values())
if total <= 0:
    sys.exit(f"FAIL: {nodes}n: no modeled network time collected")
if class_sum != total:
    sys.exit(f"FAIL: {nodes}n: class sums {class_sum!r} != aggregate "
             f"{total!r} (must be bit-exact)")
if abs(frac_sum - 1.0) > tol:
    sys.exit(f"FAIL: {nodes}n: class fractions sum to {frac_sum!r}, "
             f"off by more than {tol}")
print(f"  {nodes}n: class sums bit-exact "
      f"(total {total:.9g} s, fraction sum {frac_sum:.17g})")

# Merge netcheck_* keys into the bench report so the dashboards that read
# BENCH_f1_scaling.json see the attribution consistency too.
try:
    rep = json.load(open(report))
except (FileNotFoundError, json.JSONDecodeError):
    rep = {"bench": "f1_scaling"}
prefix = f"netcheck_{nodes}n_"
rep[prefix + "network_total_s"] = total
rep[prefix + "fraction_sum"] = frac_sum
rep[prefix + "exact"] = 1.0
for name, c in net["classes"].items():
    rep[prefix + name + "_fraction"] = c["fraction"]
with open(report, "w") as f:
    json.dump(rep, f, indent=2)
    f.write("\n")
PY
  then
    status=1
  fi
done

if [[ $status -ne 0 ]]; then
  echo "FAIL: network attribution check failed" >&2
  exit 1
fi
echo "OK: per-class attribution partitions the aggregate exactly on both tori"
echo "recorded netcheck_* keys into $REPORT"
