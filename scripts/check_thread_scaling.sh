#!/usr/bin/env bash
# Thread-scaling check for the task-graph execution layer: runs the f1-size
# water benchmark (4096 molecules = 12288 atoms, cluster kernel, GSE
# electrostatics) at 1/2/4/8 threads, byte-compares every trajectory
# against the single-thread run (determinism is a hard requirement, so
# `cmp` — not a tolerance diff — is the bar), and checks the 8-thread
# speedup.
#
# The speedup assertion (>= 3x at 8 threads) only fires on hosts with at
# least 8 physical execution units; on smaller machines the determinism
# check still runs and the measured speedups are reported as informational.
#
# Usage: scripts/check_thread_scaling.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
RUN="${BUILD_DIR}/examples/antmd_run"
if [ ! -x "$RUN" ]; then
  echo "building antmd_run in ${BUILD_DIR}..."
  cmake -B "${BUILD_DIR}" -S . > /dev/null
  cmake --build "${BUILD_DIR}" --target antmd_run -j > /dev/null
fi

WORK="$(mktemp -d /tmp/antmd_scaling.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

STEPS="${ANTMD_SCALING_STEPS:-40}"
MIN_SPEEDUP="${ANTMD_SCALING_MIN_SPEEDUP:-3.0}"

run_one() {  # threads -> writes ${WORK}/t${threads}.xyz, echoes seconds
  local threads="$1"
  local tag="t${threads}"
  cat > "${WORK}/${tag}.cfg" <<EOF
system = water
size = 4096
steps = ${STEPS}
dt_fs = 2.0
temperature = 300
thermostat = langevin
electrostatics = gse
cutoff = 9.0
skin = 1.5
seed = 3
nonbonded_kernel = cluster
threads = ${threads}
xyz = ${WORK}/${tag}.xyz
EOF
  local t0 t1
  t0="$(date +%s.%N)"
  "$RUN" "${WORK}/${tag}.cfg" > "${WORK}/${tag}.log" 2>&1 \
    || { echo "FAIL: antmd_run ${tag} exited non-zero" >&2; \
         tail -5 "${WORK}/${tag}.log" >&2; exit 1; }
  t1="$(date +%s.%N)"
  echo "$t0 $t1" | awk '{printf "%.3f", $2 - $1}'
}

status=0
declare -A wall
for t in 1 2 4 8; do
  wall[$t]="$(run_one "$t")"
  echo "threads=${t}: ${wall[$t]} s"
done

# Determinism: every thread count must reproduce the 1-thread trajectory.
for t in 2 4 8; do
  if cmp -s "${WORK}/t1.xyz" "${WORK}/t${t}.xyz"; then
    echo "OK  trajectory --threads 1 == --threads ${t} (byte-identical)"
  else
    echo "FAIL trajectory differs at ${t} threads:"
    cmp "${WORK}/t1.xyz" "${WORK}/t${t}.xyz" || true
    status=1
  fi
done

speedup8="$(awk -v a="${wall[1]}" -v b="${wall[8]}" \
  'BEGIN {printf "%.2f", (b > 0) ? a / b : 0}')"
echo "speedup at 8 threads: ${speedup8}x (1t ${wall[1]}s / 8t ${wall[8]}s)"

CORES="$(nproc 2>/dev/null || echo 1)"
if [ "$CORES" -ge 8 ]; then
  if awk -v s="$speedup8" -v m="$MIN_SPEEDUP" 'BEGIN {exit !(s >= m)}'; then
    echo "OK  8-thread speedup ${speedup8}x >= ${MIN_SPEEDUP}x"
  else
    echo "FAIL 8-thread speedup ${speedup8}x < required ${MIN_SPEEDUP}x"
    status=1
  fi
else
  echo "note: host has ${CORES} core(s) < 8 — speedup is informational only"
fi

if [ "$status" -eq 0 ]; then
  echo "thread scaling: all checks passed"
else
  echo "thread scaling: FAILURES above"
fi
exit "$status"
