#!/usr/bin/env bash
# SDC chaos matrix (DESIGN.md "Failure model & recovery", SDC section):
# inject every bit-flip fault kind x >=3 fire steps x >=3 bit targets into
# supervised, audited runs on both engines (host ljfluid, machine water)
# and assert, for every cell:
#
#   detect    — the recovery report counts >= 1 corruption, and the first
#               silent-corruption event lands within one audit interval of
#               the injected flip
#   recover   — the run completes (exit 0, "run completed"); no budget
#               escalation
#   identical — the final trajectory frame is byte-identical to the
#               fault-free reference run's final frame
#
# then gate the audit cost: with auditing on at the production stride
# (interval 500, default shadow window 2) the `resilience.audit` share of
# the run's instrumented walltime must stay under MAX_OVERHEAD_PCT
# (default 5%), min-of-REPS in the spirit of
# scripts/check_metrics_overhead.sh (see the gate section for why the
# measurement is in-process rather than cross-run).
#
# Bit addressing: kBitFlipState payloads are global bit indices over
# positions||velocities.  The matrix targets bit 0 of byte 5 inside three
# different position doubles (payload = 64*d + 40): a mid-mantissa flip,
# ~2^-12 relative, large enough that the machine engine's ~2^-23 fixed-point
# position grid cannot absorb it (a flip below the grid quantum is erased
# by the next position update and is *correctly* undetected — see
# audit_test's machine case) yet small enough not to blow up the forces
# into a NaN, which would be caught by the numerical guard instead of the
# auditor.  Table and checkpoint-buffer flips are detected by golden CRC
# regardless of which bit is hit, so those payloads are arbitrary.
#
# Usage: scripts/run_sdc_chaos.sh
# Env:
#   ANTMD_RUN_BIN     path to a prebuilt antmd_run; when unset the script
#                     configures/builds the default tree.  ctest's `-L soak`
#                     registration sets it to the freshly built CLI.
#   REPS              timing repetitions for the overhead gate (default 3)
#   MAX_OVERHEAD_PCT  audit walltime budget in percent (default 5.0)
set -euo pipefail

cd "$(dirname "$0")/.."

REPS="${REPS:-3}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-5.0}"

if [[ -z "${ANTMD_RUN_BIN:-}" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build --target antmd_run -j "$(nproc)" >/dev/null
  ANTMD_RUN_BIN="build/examples/antmd_run"
fi

WORK="$(mktemp -d /tmp/antmd_sdc_chaos.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

AUDIT_INTERVAL=8
STEPS=40

# --- engine configs ---------------------------------------------------------
cat > "$WORK/host.cfg" <<EOF
system      = ljfluid
size        = 125
seed        = 1
engine      = host
steps       = $STEPS
dt_fs       = 4.0
temperature = 120
cutoff      = 7.0
thermostat  = langevin
threads     = 1
EOF
HOST_ATOMS=125

cat > "$WORK/machine.cfg" <<EOF
system      = water
size        = 64
seed        = 1
engine      = machine
nodes       = 2
steps       = $STEPS
dt_fs       = 2.0
temperature = 300
thermostat  = langevin
cutoff      = 5.0
skin        = 0.8
threads     = 1
EOF
MACHINE_ATOMS=192   # 64 rigid 3-site waters

# Final trajectory frame (atom lines + 2 header lines) of an xyz file.
final_frame() {  # path atoms
  tail -n "$(( $2 + 2 ))" "$1"
}

# --- fault-free references --------------------------------------------------
for engine in host machine; do
  cfg="$WORK/ref_$engine.cfg"
  cp "$WORK/$engine.cfg" "$cfg"
  echo "xyz = $WORK/ref_$engine.xyz" >> "$cfg"
  "$ANTMD_RUN_BIN" "$cfg" > /dev/null
done
final_frame "$WORK/ref_host.xyz" "$HOST_ATOMS" > "$WORK/ref_host.frame"
final_frame "$WORK/ref_machine.xyz" "$MACHINE_ATOMS" > "$WORK/ref_machine.frame"

# --- chaos matrix -----------------------------------------------------------
# Mid-mantissa position bits (see header); table/buffer targets arbitrary.
STATE_PAYLOADS=(1384 9960 25640)
TABLE_PAYLOADS=(1001 50021 200003)
BUFFER_PAYLOADS=(17 4099 65537)
FIRE_AFTERS=(6 14 23)   # flips land after steps 7, 15, 24

cells=0
fail=0
for engine in host machine; do
  atoms_var="$(echo "$engine" | tr '[:lower:]' '[:upper:]')_ATOMS"
  atoms="${!atoms_var}"
  for kind in bit_flip_state bit_flip_table bit_flip_checkpoint_buffer; do
    case "$kind" in
      bit_flip_state)             payloads=("${STATE_PAYLOADS[@]}") ;;
      bit_flip_table)             payloads=("${TABLE_PAYLOADS[@]}") ;;
      bit_flip_checkpoint_buffer) payloads=("${BUFFER_PAYLOADS[@]}") ;;
    esac
    for fire in "${FIRE_AFTERS[@]}"; do
      for payload in "${payloads[@]}"; do
        id="${engine}_${kind}_f${fire}_p${payload}"
        cfg="$WORK/$id.cfg"
        cp "$WORK/$engine.cfg" "$cfg"
        echo "xyz = $WORK/$id.xyz" >> "$cfg"
        out="$WORK/$id.out"
        rc=0
        "$ANTMD_RUN_BIN" "$cfg" --supervise \
            --checkpoint "$WORK/$id.ckpt" \
            --checkpoint-interval "$AUDIT_INTERVAL" \
            --audit-interval "$AUDIT_INTERVAL" --audit-shadow-window 0 \
            --max-retries 3 \
            --fault "$kind:$fire:1:$payload" > "$out" 2>&1 || rc=$?
        (( ++cells ))
        if (( rc != 0 )); then
          echo "FAIL $id: exit $rc" >&2
          sed 's/^/    /' "$out" >&2
          fail=1
          continue
        fi
        if ! grep -q "recovery report: run completed" "$out"; then
          echo "FAIL $id: supervisor did not report completion" >&2
          fail=1
          continue
        fi
        corruptions=$(sed -n 's/.*corruptions: *//p' "$out" | head -n 1)
        if [[ -z "$corruptions" || "$corruptions" -lt 1 ]]; then
          echo "FAIL $id: corruption not detected (corruptions=$corruptions)" >&2
          fail=1
          continue
        fi
        # Detection latency and mechanism.  The recovery event records the
        # post-rollback step, so the detection step comes from the shadow-
        # replay detail "steps [a, b]" (b = the audit that caught it); the
        # scrub and retained-buffer CRC run at every audit point, so for
        # those kinds the mechanism string itself proves detection landed
        # at the first audit after the flip (armed at fire_after=$fire ->
        # the flip lands after step fire+1).
        flip_step=$(( fire + 1 ))
        case "$kind" in
          bit_flip_state)
            detect_step=$(sed -n \
              's/.*shadow replay of steps \[[0-9]*, \([0-9]*\)\].*/\1/p' \
              "$out" | head -n 1)
            if [[ -z "$detect_step" ]] || \
               (( detect_step < flip_step )) || \
               (( detect_step > flip_step + AUDIT_INTERVAL )); then
              echo "FAIL $id: detection at step '${detect_step:-none}'," \
                   "flip at $flip_step, interval $AUDIT_INTERVAL" >&2
              fail=1
              continue
            fi ;;
          bit_flip_table)
            if ! grep -q "static data corrupt" "$out"; then
              echo "FAIL $id: table flip not caught by the scrubber" >&2
              fail=1
              continue
            fi ;;
          bit_flip_checkpoint_buffer)
            if ! grep -q "snapshot buffer failed its CRC" "$out"; then
              echo "FAIL $id: buffer flip not caught by the retained CRC" >&2
              fail=1
              continue
            fi ;;
        esac
        if ! final_frame "$WORK/$id.xyz" "$atoms" | \
             cmp -s - "$WORK/ref_$engine.frame"; then
          echo "FAIL $id: recovered trajectory differs from fault-free run" >&2
          fail=1
          continue
        fi
      done
    done
  done
done

echo "run_sdc_chaos: $cells matrix cells checked"
if (( fail )); then
  echo "run_sdc_chaos: FAIL" >&2
  exit 1
fi

# --- audit overhead gate ----------------------------------------------------
# Longer clean host run; compare supervised-with-audit against supervised-
# without-audit so the gate isolates the audit cost, not supervision's.
# Each audit pays two checkpoint restores (each rebuilds the neighbor list
# and forces, a few step-equivalents, and shifts the displacement-triggered
# rebuild cadence afterwards) plus the shadow-window replay and digests — a
# fixed cost per audit, so the production stride (interval 500, default
# shadow window 2) amortizes it to a few percent on a system large enough
# that stepping, not serialization, dominates.  The matrix above uses a
# deliberately tight interval 8 to exercise detection, not to be cheap.
cat > "$WORK/perf.cfg" <<EOF
system      = ljfluid
size        = 512
seed        = 1
engine      = host
steps       = 1500
dt_fs       = 4.0
temperature = 120
cutoff      = 7.0
thermostat  = langevin
threads     = 1
EOF

# Measure with the run's own phase attribution (the `resilience.audit`
# walltime bucket in the end-of-run summary) rather than cross-run timing:
# two separate processes land on different memory layouts, and the
# resulting cache-aliasing jitter (±10% user CPU for identical work on
# this class of box) swamps a few-percent signal no matter how many reps
# a min-of-N takes.  The in-process ratio shares one layout between
# numerator and denominator and repeats to within a few tenths of a
# percent.  Keep the minimum share over $REPS runs — the run least
# disturbed by scheduler noise.
best_share=""
for _ in $(seq "$REPS"); do
  "$ANTMD_RUN_BIN" "$WORK/perf.cfg" --supervise \
      --audit-interval 500 --audit-shadow-window 2 > "$WORK/perf.out"
  share=$(sed -n \
    's/| resilience\.audit *| *[0-9.]* *| *\([0-9.]*\) % *|/\1/p' \
    "$WORK/perf.out" | head -n 1)
  if [[ -z "$share" ]]; then
    echo "FAIL: no resilience.audit phase in the run summary" >&2
    exit 1
  fi
  if [[ -z "$best_share" ]] || awk -v a="$share" -v b="$best_share" \
      'BEGIN {exit !(a < b)}'; then
    best_share="$share"
  fi
done
echo "audit share of instrumented walltime at stride 500: ${best_share}%"
if awk -v o="$best_share" -v cap="$MAX_OVERHEAD_PCT" 'BEGIN {exit !(o > cap)}'
then
  echo "FAIL: audit overhead ${best_share}% exceeds budget ${MAX_OVERHEAD_PCT}%" >&2
  exit 1
fi

echo "run_sdc_chaos: PASS"
