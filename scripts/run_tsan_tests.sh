#!/usr/bin/env bash
# Build the TSan-instrumented tree and run the tests that exercise the
# parallel execution layer (worker-thread force fan-out, parallel neighbor
# rebuild, concurrent replica chunks) under ThreadSanitizer.
#
# Usage: scripts/run_tsan_tests.sh [extra ctest -R regex]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

# The parallel layer lives in util (pool/context), md (neighbor list),
# runtime (engine fan-out), sampling (replica chunks) and obs (the sharded
# concurrent metrics registry + trace session).  fault_test covers the
# scoped fault registry polled from worker lanes; fleet_test multiplexes
# many supervised engines over one shared worker pool.
FILTER="${1:-obs_test|profile_test|util_test|graph_determinism_test|md_test|runtime_test|sampling_test|parallel_determinism_test|supervisor_test|fault_test|fleet_test|simd_kernel_test}"

TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
  ctest --test-dir build-tsan -R "$FILTER" --output-on-failure

# The golden harness includes the cluster-kernel thread-invariance case
# (1/2/8 worker fan-out over shared tile scratch) — exactly the access
# pattern TSan is for.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
  ctest --test-dir build-tsan -L golden --output-on-failure
